#include "core/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strutil.hpp"
#include "core/decision_io.hpp"

namespace dampi::core {

namespace {

/// FNV-1a over the pinned initial schedule so the fingerprint stays one
/// line regardless of how many decisions were pinned.
std::uint64_t hash_schedule(const Schedule& schedule) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [key, src] : schedule.forced) {
    for (const std::uint64_t v :
         {static_cast<std::uint64_t>(key.rank), key.nd_index,
          static_cast<std::uint64_t>(src)}) {
      h ^= v;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// One-line-safe text encoding shared with the dist wire protocol.
using dampi::escape_line;
using dampi::unescape_line;

/// The remainder of `line` after the leading keyword and one space.
std::string rest_of_line(const std::string& line, std::size_t keyword_len) {
  if (line.size() <= keyword_len + 1) return "";
  return line.substr(keyword_len + 1);
}

/// One frame line under `keyword` ("frame" for the live stack, "pframe"
/// for harvested pending-sleep frames). The fixed prefix is followed by
/// optional single-letter trailers, written only when non-default so
/// pre-POR journals and POR-off journals keep their exact shape:
///   e 1                 coordinator-owned decision site
///   z N r0..rN-1        sleep set
///   f comm tag          decision footprint channel
///   v N c0..cN-1        vector timestamp at epoch open
std::string serialize_frame(const DfsFrame& frame, const char* keyword) {
  std::string out =
      strfmt("%s %d %llu %llu %d %d %d u %zu", keyword, frame.key.rank,
             static_cast<unsigned long long>(frame.key.nd_index),
             static_cast<unsigned long long>(frame.lc), frame.taken_src,
             frame.record_alts ? 1 : 0, frame.mix_budget,
             frame.untried.size());
  for (const mpism::Rank src : frame.untried) {
    out += strfmt(" %d", src);
  }
  out += strfmt(" s %zu", frame.seen.size());
  for (const mpism::Rank src : frame.seen) {
    out += strfmt(" %d", src);
  }
  if (frame.escape_alts) out += " e 1";
  if (!frame.sleep.empty()) {
    out += strfmt(" z %zu", frame.sleep.size());
    for (const mpism::Rank src : frame.sleep) {
      out += strfmt(" %d", src);
    }
  }
  if (frame.comm != mpism::kCommWorld || frame.tag != mpism::kAnyTag) {
    out += strfmt(" f %d %d", frame.comm, frame.tag);
  }
  if (!frame.vc.empty()) {
    out += strfmt(" v %zu", frame.vc.size());
    for (const std::uint64_t c : frame.vc) {
      out += strfmt(" %llu", static_cast<unsigned long long>(c));
    }
  }
  out += '\n';
  return out;
}

/// Inverse of serialize_frame (past the keyword). Absent trailers parse
/// to their defaults, so older journals load unchanged.
bool parse_frame(std::istringstream& ls, DfsFrame* frame,
                 std::string* error) {
  int record_alts = 0;
  std::string marker;
  std::size_t count = 0;
  if (!(ls >> frame->key.rank >> frame->key.nd_index >> frame->lc >>
        frame->taken_src >> record_alts >> frame->mix_budget >> marker >>
        count) ||
      marker != "u") {
    *error = "bad frame line";
    return false;
  }
  frame->record_alts = record_alts != 0;
  frame->untried.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(ls >> frame->untried[i])) {
      *error = "truncated untried list";
      return false;
    }
  }
  if (!(ls >> marker >> count) || marker != "s") {
    *error = "bad seen list";
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    mpism::Rank src = -1;
    if (!(ls >> src)) {
      *error = "truncated seen list";
      return false;
    }
    frame->seen.insert(src);
  }
  while (ls >> marker) {
    if (marker == "e") {
      int escape = 0;
      if (!(ls >> escape)) {
        *error = "bad frame trailer";
        return false;
      }
      frame->escape_alts = escape != 0;
    } else if (marker == "z") {
      if (!(ls >> count)) {
        *error = "bad sleep list";
        return false;
      }
      for (std::size_t i = 0; i < count; ++i) {
        mpism::Rank src = -1;
        if (!(ls >> src)) {
          *error = "truncated sleep list";
          return false;
        }
        frame->sleep.insert(src);
      }
    } else if (marker == "f") {
      if (!(ls >> frame->comm >> frame->tag)) {
        *error = "bad footprint trailer";
        return false;
      }
    } else if (marker == "v") {
      if (!(ls >> count)) {
        *error = "bad vector-clock trailer";
        return false;
      }
      frame->vc.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        if (!(ls >> frame->vc[i])) {
          *error = "truncated vector-clock trailer";
          return false;
        }
      }
    } else {
      *error = "bad frame trailer";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string options_fingerprint(const ExplorerOptions& options) {
  std::string mix = "none";
  if (options.mixing_bound.has_value()) {
    mix = strfmt("%d", *options.mixing_bound);
  }
  std::string fp = strfmt(
      "nprocs=%d clock=%d transport=%d mix=%s loopabs=%d unsafe=%d "
      "autoloop=%d defsync=%d sched=%s schedseed=%llu match=%s lock=%s "
      "por=%s policy=%d pseed=%llu init=%016llx",
      options.nprocs, static_cast<int>(options.clock_mode),
      static_cast<int>(options.transport), mix.c_str(),
      options.loop_abstraction ? 1 : 0, options.unsafe_monitor ? 1 : 0,
      options.auto_loop_threshold, options.deferred_clock_sync ? 1 : 0,
      mpism::sched_spec(options.sched).c_str(),
      static_cast<unsigned long long>(options.sched.seed),
      mpism::match_spec(options.match),
      mpism::engine_lock_spec(options.engine_lock).c_str(),
      por_spec(options.por),
      static_cast<int>(options.policy),
      static_cast<unsigned long long>(options.policy_seed),
      static_cast<unsigned long long>(hash_schedule(options.initial_schedule)));
  fp += " fault=";
  fp += options.fault ? fault_spec(*options.fault) : "none";
  if (!options.checkpoint_tag.empty()) {
    fp += " tag=" + options.checkpoint_tag;
  }
  return fp;
}

std::string serialize_checkpoint(const Checkpoint& checkpoint) {
  std::string out = kCheckpointHeader;
  out += '\n';
  out += "options " + checkpoint.fingerprint + '\n';
  out += strfmt("interleavings %llu\n",
                static_cast<unsigned long long>(checkpoint.interleavings));
  out += strfmt("counters %llu %llu %llu %llu %llu\n",
                static_cast<unsigned long long>(checkpoint.retries),
                static_cast<unsigned long long>(checkpoint.timeouts),
                static_cast<unsigned long long>(checkpoint.quarantined),
                static_cast<unsigned long long>(checkpoint.divergences),
                static_cast<unsigned long long>(checkpoint.prefix_mismatches));
  if (!checkpoint.fault_fires.empty()) {
    out += strfmt("ffires %zu", checkpoint.fault_fires.size());
    for (const std::uint64_t f : checkpoint.fault_fires) {
      out += strfmt(" %llu", static_cast<unsigned long long>(f));
    }
    out += '\n';
  }
  for (const DfsFrame& frame : checkpoint.frames) {
    out += serialize_frame(frame, "frame");
  }
  for (const DfsFrame& frame : checkpoint.pending_sleep) {
    out += serialize_frame(frame, "pframe");
  }
  for (const BugRecord& bug : checkpoint.bugs) {
    out += strfmt("bug %d %llu\n", static_cast<int>(bug.kind),
                  static_cast<unsigned long long>(bug.interleaving));
    for (const mpism::ErrorInfo& err : bug.errors) {
      out += strfmt("berr %d %s\n", err.rank, escape_line(err.message).c_str());
    }
    out += "bdetail " + escape_line(bug.deadlock_detail) + '\n';
    for (const auto& [key, src] : bug.schedule.forced) {
      out += strfmt("bdec %d %llu %d\n", key.rank,
                    static_cast<unsigned long long>(key.nd_index), src);
    }
  }
  for (const std::string& alert : checkpoint.unsafe_alerts) {
    out += "alert " + escape_line(alert) + '\n';
  }
  out += "end\n";
  return out;
}

std::optional<Checkpoint> parse_checkpoint(
    const std::string& text, const std::string& expected_fingerprint,
    std::string* error) {
  auto fail = [error](std::string message) -> std::optional<Checkpoint> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  Checkpoint cp;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  bool saw_options = false;
  bool saw_end = false;
  BugRecord* open_bug = nullptr;

  while (std::getline(in, line)) {
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (saw_end) {
      return fail(strfmt("line %d: content after 'end' trailer", line_no));
    }
    // Same header discipline as decision files: the version line must be
    // the first non-blank line, or this is not a checkpoint at all.
    if (!saw_header) {
      if (line != kCheckpointHeader) {
        return fail(
            strfmt("line %d: first non-blank line must be the '%s' header",
                   line_no, kCheckpointHeader));
      }
      saw_header = true;
      continue;
    }
    if (line[0] == '#') continue;

    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;

    if (keyword == "options") {
      cp.fingerprint = rest_of_line(line, keyword.size());
      if (!expected_fingerprint.empty() &&
          cp.fingerprint != expected_fingerprint) {
        return fail(strfmt(
            "options fingerprint mismatch — checkpoint was written by a "
            "different configuration\n  checkpoint: %s\n  current:    %s",
            cp.fingerprint.c_str(), expected_fingerprint.c_str()));
      }
      saw_options = true;
    } else if (keyword == "interleavings") {
      if (!(ls >> cp.interleavings)) {
        return fail(strfmt("line %d: bad interleavings count", line_no));
      }
    } else if (keyword == "counters") {
      if (!(ls >> cp.retries >> cp.timeouts >> cp.quarantined >>
            cp.divergences >> cp.prefix_mismatches)) {
        return fail(strfmt("line %d: bad counters line", line_no));
      }
    } else if (keyword == "ffires") {
      std::size_t count = 0;
      if (!(ls >> count)) {
        return fail(strfmt("line %d: bad ffires line", line_no));
      }
      cp.fault_fires.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        if (!(ls >> cp.fault_fires[i])) {
          return fail(strfmt("line %d: truncated ffires line", line_no));
        }
      }
    } else if (keyword == "frame" || keyword == "pframe") {
      DfsFrame frame;
      std::string frame_error;
      if (!parse_frame(ls, &frame, &frame_error)) {
        return fail(strfmt("line %d: %s", line_no, frame_error.c_str()));
      }
      (keyword == "frame" ? cp.frames : cp.pending_sleep)
          .push_back(std::move(frame));
      open_bug = nullptr;
    } else if (keyword == "bug") {
      BugRecord bug;
      int kind = 0;
      if (!(ls >> kind >> bug.interleaving) || kind < 0 ||
          kind > static_cast<int>(BugRecord::Kind::kHang)) {
        return fail(strfmt("line %d: bad bug line", line_no));
      }
      bug.kind = static_cast<BugRecord::Kind>(kind);
      cp.bugs.push_back(std::move(bug));
      open_bug = &cp.bugs.back();
    } else if (keyword == "berr") {
      mpism::ErrorInfo err;
      if (open_bug == nullptr || !(ls >> err.rank)) {
        return fail(strfmt("line %d: berr outside a bug block", line_no));
      }
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      err.message = unescape_line(rest);
      open_bug->errors.push_back(std::move(err));
    } else if (keyword == "bdetail") {
      if (open_bug == nullptr) {
        return fail(strfmt("line %d: bdetail outside a bug block", line_no));
      }
      open_bug->deadlock_detail = unescape_line(rest_of_line(line, keyword.size()));
    } else if (keyword == "bdec") {
      EpochKey key;
      mpism::Rank src = -1;
      if (open_bug == nullptr ||
          !(ls >> key.rank >> key.nd_index >> src)) {
        return fail(strfmt("line %d: bdec outside a bug block", line_no));
      }
      open_bug->schedule.forced[key] = src;
    } else if (keyword == "alert") {
      cp.unsafe_alerts.push_back(unescape_line(rest_of_line(line, keyword.size())));
      open_bug = nullptr;
    } else if (keyword == "end") {
      saw_end = true;
    } else {
      return fail(strfmt("line %d: unknown keyword '%s'", line_no,
                         keyword.c_str()));
    }
  }
  if (!saw_header) {
    return fail(strfmt("missing '%s' header", kCheckpointHeader));
  }
  if (!saw_options) {
    return fail("missing 'options' fingerprint line");
  }
  if (!saw_end) {
    return fail("truncated checkpoint (missing 'end' trailer)");
  }
  return cp;
}

bool save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << serialize_checkpoint(checkpoint);
    if (!out) return false;
  }
  // rename(2) is atomic within a filesystem: readers see either the old
  // complete checkpoint or the new one, never a torn write.
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<Checkpoint> load_checkpoint(
    const std::string& path, const std::string& expected_fingerprint,
    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_checkpoint(buffer.str(), expected_fingerprint, error);
}

}  // namespace dampi::core
