// ISP baseline tests: same verification power, centralized cost profile.
#include <gtest/gtest.h>

#include "isp/isp_verifier.hpp"
#include "support/program_gen.hpp"
#include "support/reference_enumerator.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/matmult.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using isp::IspOptions;
using isp::IspVerifier;
using isp::SchedulerSim;
using mpism::pack;
using mpism::Proc;

IspOptions isp_options(int nprocs) {
  IspOptions options;
  options.explorer = explorer_options(nprocs);
  return options;
}

TEST(SchedulerSim, SerializesArrivals) {
  SchedulerSim sim;
  // Two calls arriving together are serviced back to back.
  EXPECT_DOUBLE_EQ(sim.transact(10.0, 5.0), 15.0);
  EXPECT_DOUBLE_EQ(sim.transact(10.0, 5.0), 20.0);
  // A late arrival after an idle gap starts at its own arrival time.
  EXPECT_DOUBLE_EQ(sim.transact(100.0, 5.0), 105.0);
  EXPECT_EQ(sim.transactions(), 3u);
}

TEST(Isp, FindsTheFig3Bug) {
  IspVerifier verifier(isp_options(3));
  auto result = verifier.verify(workloads::fig3_wildcard_bug);
  EXPECT_TRUE(result.error_found);
}

TEST(Isp, FindsWildcardDependentDeadlock) {
  IspVerifier verifier(isp_options(3));
  auto result = verifier.verify(workloads::wildcard_dependent_deadlock);
  EXPECT_TRUE(result.deadlock_found);
}

TEST(Isp, GlobalViewIsCompleteOnFig4) {
  // ISP's vector-clock-exact view covers the cross-coupled pattern that
  // DAMPI's Lamport mode misses.
  IspOptions options = isp_options(4);
  std::size_t outcomes = 0;
  IspVerifier verifier(options);
  std::set<OutcomeSignature> seen;
  auto result = verifier.verify(
      workloads::fig4_cross_coupled,
      [&seen](const core::RunTrace& trace, const mpism::RunReport& report,
              const core::Schedule&) {
        seen.insert(signature_of(trace, report));
      });
  outcomes = seen.size();
  EXPECT_FALSE(result.error_found);
  EXPECT_GE(outcomes, 3u);
}

TEST(Isp, SlowdownExceedsDampi) {
  // The same program verified by both tools: ISP's per-call round trips
  // dominate DAMPI's piggyback overhead.
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 2;
  const auto program = [config](Proc& p) { workloads::matmult(p, config); };

  core::VerifyOptions dampi_options;
  dampi_options.explorer = explorer_options(3);
  dampi_options.explorer.max_interleavings = 1;
  core::Verifier dampi(dampi_options);
  const auto dampi_result = dampi.verify(program);

  IspOptions options = isp_options(3);
  options.explorer.max_interleavings = 1;
  IspVerifier ispv(options);
  const auto isp_result = ispv.verify(program);

  EXPECT_GT(isp_result.slowdown, dampi_result.slowdown);
  EXPECT_GT(isp_result.slowdown, 2.0);  // round trips are not cheap
}

// The paper's Fig. 5 shape in miniature: ISP's verification time grows
// much faster with process count than DAMPI's on a deterministic,
// communication-heavy program.
TEST(Isp, CentralizedCostScalesWorseThanDampi) {
  auto comm_heavy = [](Proc& p) {
    const int n = p.size();
    for (int round = 0; round < 20; ++round) {
      const int to = (p.rank() + 1) % n;
      const int from = (p.rank() + n - 1) % n;
      mpism::RequestId r = p.irecv(from, 1);
      p.send(to, 1, pack<int>(round));
      p.wait(r);
      p.allreduce_u64(1, mpism::ReduceOp::kSumU64);
    }
  };

  auto instrumented_vtime = [&](int nprocs, bool use_isp) {
    if (use_isp) {
      IspOptions options = isp_options(nprocs);
      options.explorer.max_interleavings = 1;
      IspVerifier verifier(options);
      return verifier.verify(comm_heavy).instrumented_vtime_us;
    }
    core::VerifyOptions options;
    options.explorer = explorer_options(nprocs);
    options.explorer.max_interleavings = 1;
    core::Verifier verifier(options);
    return verifier.verify(comm_heavy).instrumented_vtime_us;
  };

  const double isp_small = instrumented_vtime(4, true);
  const double isp_large = instrumented_vtime(16, true);
  const double dampi_small = instrumented_vtime(4, false);
  const double dampi_large = instrumented_vtime(16, false);

  const double isp_growth = isp_large / isp_small;
  const double dampi_growth = dampi_large / dampi_small;
  // ISP's scheduler occupancy grows with total calls (4x more ranks =>
  // ~4x more scheduler work); DAMPI's per-rank work is flat.
  EXPECT_GT(isp_growth, 2.0 * dampi_growth);
}

TEST(Isp, BoundedMixingWorksUnderIsp) {
  // fan_in_rounds queues every candidate before any receive posts, so
  // interleaving counts are deterministic.
  const auto program = [](Proc& p) { workloads::fan_in_rounds(p, 2); };

  auto count_with = [&](std::optional<int> k) {
    IspOptions options = isp_options(3);
    options.explorer.mixing_bound = k;
    options.explorer.max_interleavings = 4096;
    IspVerifier verifier(options);
    return verifier.verify(program).exploration.interleavings;
  };
  EXPECT_LE(count_with(0), count_with(1));
  EXPECT_LE(count_with(1), count_with(std::nullopt));
}

// ISP has the same coverage guarantee as vector-mode DAMPI: on random
// programs its explored outcome set equals the brute-force oracle's.
TEST(Isp, MatchesOracleOnRandomPrograms) {
  for (std::uint64_t seed : {3u, 17u, 59u}) {
    const GeneratedProgram prog = generate_program(seed, 3, 4);
    const auto run = [prog](Proc& p) { run_generated(p, prog); };

    core::ExplorerOptions oracle_options = explorer_options(3);
    oracle_options.clock_mode = core::ClockMode::kVector;
    ReferenceEnumerator oracle(oracle_options, run);
    const auto reachable = oracle.enumerate();

    IspOptions options = isp_options(3);
    options.explorer.max_interleavings = 1u << 14;
    options.measure_native = false;
    std::set<OutcomeSignature> seen;
    IspVerifier verifier(options);
    verifier.verify(run, [&seen](const core::RunTrace& trace,
                                 const mpism::RunReport& report,
                                 const core::Schedule&) {
      seen.insert(signature_of(trace, report));
    });
    EXPECT_EQ(seen, reachable) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dampi::test
