#include "mpism/proc.hpp"

#include "common/check.hpp"
#include "mpism/engine.hpp"

namespace dampi::mpism {

int Proc::size() const { return engine_->world_size(); }

Rank Proc::comm_rank(CommId comm) const {
  return engine_->comm_rank_of(comm, world_rank_);
}

int Proc::comm_size(CommId comm) const { return engine_->comm_size_of(comm); }

RequestId Proc::isend(Rank dst, Tag tag, Bytes payload, CommId comm) {
  return engine_->api_isend(world_rank_, dst, tag, std::move(payload), comm,
                            /*blocking=*/false, /*synchronous=*/false);
}

RequestId Proc::irecv(Rank src, Tag tag, CommId comm) {
  return engine_->api_irecv(world_rank_, src, tag, comm, /*blocking=*/false);
}

void Proc::send(Rank dst, Tag tag, Bytes payload, CommId comm) {
  const RequestId req = engine_->api_isend(world_rank_, dst, tag,
                                           std::move(payload), comm,
                                           /*blocking=*/true,
                                           /*synchronous=*/false);
  engine_->api_wait(world_rank_, req, nullptr, /*count_stat=*/false);
}

RequestId Proc::issend(Rank dst, Tag tag, Bytes payload, CommId comm) {
  return engine_->api_isend(world_rank_, dst, tag, std::move(payload), comm,
                            /*blocking=*/false, /*synchronous=*/true);
}

void Proc::ssend(Rank dst, Tag tag, Bytes payload, CommId comm) {
  const RequestId req = engine_->api_isend(world_rank_, dst, tag,
                                           std::move(payload), comm,
                                           /*blocking=*/true,
                                           /*synchronous=*/true);
  engine_->api_wait(world_rank_, req, nullptr, /*count_stat=*/false);
}

Status Proc::sendrecv(Rank dst, Tag send_tag, Bytes payload, Rank src,
                      Tag recv_tag, Bytes* out, CommId comm) {
  const RequestId recv_req =
      engine_->api_irecv(world_rank_, src, recv_tag, comm, /*blocking=*/true);
  const RequestId send_req =
      engine_->api_isend(world_rank_, dst, send_tag, std::move(payload), comm,
                         /*blocking=*/true, /*synchronous=*/false);
  engine_->api_wait(world_rank_, send_req, nullptr, /*count_stat=*/false);
  return engine_->api_wait(world_rank_, recv_req, out, /*count_stat=*/false);
}

Status Proc::recv(Rank src, Tag tag, Bytes* out, CommId comm) {
  const RequestId req =
      engine_->api_irecv(world_rank_, src, tag, comm, /*blocking=*/true);
  return engine_->api_wait(world_rank_, req, out, /*count_stat=*/false);
}

Status Proc::wait(RequestId req, Bytes* out) {
  return engine_->api_wait(world_rank_, req, out, /*count_stat=*/true);
}

bool Proc::test(RequestId req, Status* status, Bytes* out) {
  return engine_->api_test(world_rank_, req, status, out);
}

void Proc::waitall(std::span<RequestId> reqs) {
  engine_->api_waitall(world_rank_, reqs);
}

std::size_t Proc::waitany(std::span<RequestId> reqs, Status* status,
                          Bytes* out) {
  return engine_->api_waitany(world_rank_, reqs, status, out);
}

bool Proc::testall(std::span<RequestId> reqs) {
  return engine_->api_testall(world_rank_, reqs);
}

std::size_t Proc::testany(std::span<RequestId> reqs, Status* status,
                          Bytes* out) {
  return engine_->api_testany(world_rank_, reqs, status, out);
}

Status Proc::probe(Rank src, Tag tag, CommId comm) {
  return engine_->api_probe(world_rank_, src, tag, comm, /*flag=*/nullptr);
}

bool Proc::iprobe(Rank src, Tag tag, Status* status, CommId comm) {
  bool flag = false;
  Status st = engine_->api_probe(world_rank_, src, tag, comm, &flag);
  if (flag && status != nullptr) *status = st;
  return flag;
}

void Proc::barrier(CommId comm) {
  engine_->api_collective(world_rank_, CollKind::kBarrier, comm, 0, {});
}

void Proc::bcast(Bytes* data, Rank root, CommId comm) {
  DAMPI_CHECK(data != nullptr);
  CollUserData in;
  if (comm_rank(comm) == root) in.single = std::move(*data);
  CollUserResult out = engine_->api_collective(world_rank_, CollKind::kBcast,
                                               comm, root, std::move(in));
  *data = std::move(out.single);
}

Bytes Proc::reduce(const Bytes& contribution, ReduceOp op, Rank root,
                   CommId comm) {
  CollUserData in;
  in.single = contribution;
  in.op = op;
  CollUserResult out = engine_->api_collective(world_rank_, CollKind::kReduce,
                                               comm, root, std::move(in));
  return std::move(out.single);
}

Bytes Proc::allreduce(const Bytes& contribution, ReduceOp op, CommId comm) {
  CollUserData in;
  in.single = contribution;
  in.op = op;
  CollUserResult out = engine_->api_collective(
      world_rank_, CollKind::kAllreduce, comm, 0, std::move(in));
  return std::move(out.single);
}

std::vector<Bytes> Proc::gather(const Bytes& contribution, Rank root,
                                CommId comm) {
  CollUserData in;
  in.single = contribution;
  CollUserResult out = engine_->api_collective(world_rank_, CollKind::kGather,
                                               comm, root, std::move(in));
  return std::move(out.multi);
}

Bytes Proc::scatter(std::vector<Bytes> slices_at_root, Rank root,
                    CommId comm) {
  CollUserData in;
  if (comm_rank(comm) == root) in.multi = std::move(slices_at_root);
  CollUserResult out = engine_->api_collective(world_rank_, CollKind::kScatter,
                                               comm, root, std::move(in));
  return std::move(out.single);
}

std::vector<Bytes> Proc::allgather(const Bytes& contribution, CommId comm) {
  CollUserData in;
  in.single = contribution;
  CollUserResult out = engine_->api_collective(
      world_rank_, CollKind::kAllgather, comm, 0, std::move(in));
  return std::move(out.multi);
}

std::vector<Bytes> Proc::alltoall(std::vector<Bytes> in_slices, CommId comm) {
  CollUserData in;
  in.multi = std::move(in_slices);
  CollUserResult out = engine_->api_collective(world_rank_, CollKind::kAlltoall,
                                               comm, 0, std::move(in));
  return std::move(out.multi);
}

std::uint64_t Proc::allreduce_u64(std::uint64_t value, ReduceOp op,
                                  CommId comm) {
  return unpack<std::uint64_t>(allreduce(pack(value), op, comm));
}

double Proc::allreduce_f64(double value, ReduceOp op, CommId comm) {
  return unpack<double>(allreduce(pack(value), op, comm));
}

CommId Proc::comm_dup(CommId comm) {
  CollUserResult out =
      engine_->api_collective(world_rank_, CollKind::kCommDup, comm, 0, {});
  return out.new_comm;
}

CommId Proc::comm_split(int color, int key, CommId comm) {
  CollUserData in;
  in.color = color;
  in.key = key;
  CollUserResult out = engine_->api_collective(
      world_rank_, CollKind::kCommSplit, comm, 0, std::move(in));
  return out.new_comm;
}

void Proc::comm_free(CommId comm) { engine_->api_comm_free(world_rank_, comm); }

void Proc::pcontrol(int level, const std::string& what) {
  engine_->api_pcontrol(world_rank_, level, what);
}

void Proc::compute(double us) { engine_->api_compute(world_rank_, us); }

void Proc::fail(const std::string& message) {
  engine_->api_fail(world_rank_, message);
}

void Proc::require(bool condition, const std::string& message) {
  if (!condition) fail(message);
}

}  // namespace dampi::mpism
