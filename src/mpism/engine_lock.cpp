#include "mpism/engine_lock.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace dampi::mpism {

bool parse_engine_lock_spec(const std::string& spec, EngineLockKind* out) {
  if (spec == "global") {
    *out = EngineLockKind::kGlobal;
    return true;
  }
  if (spec == "sharded") {
    *out = EngineLockKind::kSharded;
    return true;
  }
  return false;
}

std::string engine_lock_spec(EngineLockKind kind) {
  return kind == EngineLockKind::kGlobal ? "global" : "sharded";
}

EngineLockKind default_engine_lock_kind() {
  static const EngineLockKind cached = [] {
    EngineLockKind kind = EngineLockKind::kSharded;
    const char* env = std::getenv("DAMPI_ENGINE_LOCK");
    if (env != nullptr && env[0] != '\0' &&
        !parse_engine_lock_spec(env, &kind)) {
      DAMPI_LOG(kWarn) << "ignoring unrecognized DAMPI_ENGINE_LOCK value '"
                       << env << "' (want global|sharded)";
    }
    return kind;
  }();
  return cached;
}

}  // namespace dampi::mpism
