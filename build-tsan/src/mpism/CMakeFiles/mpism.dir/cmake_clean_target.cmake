file(REMOVE_RECURSE
  "libmpism.a"
)
