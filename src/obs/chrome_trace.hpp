// Chrome trace_event exporter plus the validator the CI smoke stage
// uses. The JSON array format loads directly in chrome://tracing and
// https://ui.perfetto.dev: one pid ("dampi"), one tid per lane (rank,
// replay worker, explorer), span events as B/E pairs, instants as "i".
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dampi::obs {

/// Render lane snapshots as a Chrome trace_event JSON array.
std::string chrome_trace_json(const std::vector<LaneSnapshot>& lanes);

/// Snapshot the global tracer and write the JSON to `path`.
/// Returns false when the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// Structural validation of an exported trace: well-formed JSON array
/// of objects, every event carries name/ph/pid/tid (and ts except
/// metadata), and per-tid timestamps are monotonically non-decreasing.
/// On failure returns false and sets `error`. `lanes_out` (optional)
/// receives the number of distinct non-metadata tids.
bool validate_chrome_trace(const std::string& json, std::string* error,
                           std::size_t* lanes_out = nullptr);

}  // namespace dampi::obs
