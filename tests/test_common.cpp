// Unit tests for the common utilities and the substrate's small pieces:
// formatting, statistics, RNG determinism, cost model, op stats, epoch
// trace ordering, and schedules.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strutil.hpp"
#include "core/decision.hpp"
#include "core/epoch.hpp"
#include "mpism/cost_model.hpp"
#include "mpism/op_stats.hpp"

namespace dampi {
namespace {

TEST(Strutil, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("rank %d: %s", 3, "ok"), "rank 3: ok");
  EXPECT_EQ(strfmt("%05.1f", 2.25), "002.2");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strutil, FixedDecimals) {
  EXPECT_EQ(fmt_fixed(1.1834, 2), "1.18");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

TEST(Stats, HumanCountMatchesPaperStyle) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(9999), "9999");
  EXPECT_EQ(human_count(10'000), "10K");
  EXPECT_EQ(human_count(187'000), "187K");
  EXPECT_EQ(human_count(7'986'400), "7986K");
  EXPECT_EQ(human_count(23'500), "24K");  // rounds
}

TEST(Stats, RunningStatMoments) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, TextTableAlignsColumns) {
  TextTable t;
  t.header({"a", "long-header"});
  t.row({"xxxx", "1"});
  const std::string out = t.str();
  EXPECT_NE(out.find("a     long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxx  1"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng base(100);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Check, ThrowsInternalErrorWithLocation) {
  try {
    DAMPI_CHECK_MSG(false, "context here");
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(CostModel, TransitScalesWithBytes) {
  mpism::CostModel cost;
  EXPECT_DOUBLE_EQ(cost.message_transit_us(0), cost.latency_us);
  EXPECT_GT(cost.message_transit_us(1 << 20), cost.message_transit_us(1024));
}

TEST(CostModel, CollectiveLogarithmic) {
  mpism::CostModel cost;
  EXPECT_DOUBLE_EQ(cost.collective_us(1), cost.collective_alpha_us);
  EXPECT_DOUBLE_EQ(cost.collective_us(2), cost.collective_alpha_us);
  EXPECT_DOUBLE_EQ(cost.collective_us(1024), 10 * cost.collective_alpha_us);
  // Monotone in P.
  double prev = 0;
  for (int p = 1; p <= 4096; p *= 2) {
    const double c = cost.collective_us(p);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(OpStats, TotalsAndPerProc) {
  mpism::OpStats stats;
  stats.init(4);
  for (int r = 0; r < 4; ++r) {
    stats.bump(mpism::OpCategory::kSendRecv, r);
    stats.bump(mpism::OpCategory::kSendRecv, r);
    stats.bump(mpism::OpCategory::kWait, r);
  }
  stats.bump(mpism::OpCategory::kCollective, 0);
  stats.bump(mpism::OpCategory::kOther, 1);
  EXPECT_EQ(stats.total(mpism::OpCategory::kSendRecv), 8u);
  EXPECT_EQ(stats.per_proc(mpism::OpCategory::kSendRecv), 2u);
  // kOther excluded from the reported total, as in the paper's log.
  EXPECT_EQ(stats.total_reported(), 13u);
}

TEST(EpochTrace, SortedOrderIsLcThenRankThenIndex) {
  core::RunTrace trace;
  auto add = [&trace](int rank, std::uint64_t nd, std::uint64_t lc) {
    core::EpochRecord rec;
    rec.key = core::EpochKey{rank, nd};
    rec.lc = lc;
    trace.epochs.push_back(rec);
  };
  add(2, 0, 5);
  add(0, 0, 5);
  add(1, 0, 3);
  add(0, 1, 9);
  const auto sorted = trace.sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0]->key.rank, 1);          // lc 3
  EXPECT_EQ(sorted[1]->key.rank, 0);          // lc 5, rank tie-break
  EXPECT_EQ(sorted[2]->key.rank, 2);          // lc 5
  EXPECT_EQ(sorted[3]->key.nd_index, 1u);     // lc 9
}

TEST(EpochTrace, SortedIsMemoizedAndCopySafe) {
  core::RunTrace trace;
  for (int i = 0; i < 4; ++i) {
    core::EpochRecord rec;
    rec.key = core::EpochKey{i, 0};
    rec.lc = static_cast<std::uint64_t>(10 - i);
    trace.epochs.push_back(rec);
  }
  const auto first = trace.sorted();
  const auto second = trace.sorted();  // cache hit
  EXPECT_EQ(first, second);
  for (const auto* e : first) {
    EXPECT_GE(e, trace.epochs.data());
    EXPECT_LT(e, trace.epochs.data() + trace.epochs.size());
  }

  // A copy must re-sort into its own buffer — a carried-over cache would
  // hand out pointers into the original.
  core::RunTrace copy = trace;
  const auto copy_sorted = copy.sorted();
  ASSERT_EQ(copy_sorted.size(), first.size());
  for (std::size_t i = 0; i < copy_sorted.size(); ++i) {
    EXPECT_NE(copy_sorted[i], first[i]);
    EXPECT_EQ(copy_sorted[i]->key, first[i]->key);
    EXPECT_GE(copy_sorted[i], copy.epochs.data());
    EXPECT_LT(copy_sorted[i], copy.epochs.data() + copy.epochs.size());
  }

  // Moving carries the buffer, so cached pointers stay valid in the
  // destination and the source cache is dropped with its epochs.
  core::RunTrace moved = std::move(copy);
  const auto moved_sorted = moved.sorted();
  ASSERT_EQ(moved_sorted.size(), first.size());
  for (const auto* e : moved_sorted) {
    EXPECT_GE(e, moved.epochs.data());
    EXPECT_LT(e, moved.epochs.data() + moved.epochs.size());
  }
}

TEST(ForcedDecisions, FlatMapSemantics) {
  core::ForcedDecisions forced;
  EXPECT_TRUE(forced.empty());
  EXPECT_EQ(forced.count(core::EpochKey{0, 0}), 0u);

  // Out-of-order inserts iterate in key order (the checkpoint and
  // decision-file formats depend on that).
  forced[core::EpochKey{2, 1}] = 7;
  forced[core::EpochKey{0, 3}] = 5;
  forced[core::EpochKey{1, 0}] = 6;
  ASSERT_EQ(forced.size(), 3u);
  std::vector<int> ranks;
  for (const auto& [key, src] : forced) ranks.push_back(key.rank);
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 2}));

  // operator[] assigns through; emplace refuses to overwrite.
  forced[core::EpochKey{1, 0}] = 9;
  EXPECT_EQ(forced.find(core::EpochKey{1, 0})->second, 9);
  EXPECT_FALSE(forced.emplace(core::EpochKey{1, 0}, 4));
  EXPECT_EQ(forced.find(core::EpochKey{1, 0})->second, 9);
  EXPECT_TRUE(forced.emplace(core::EpochKey{3, 0}, 4));
  EXPECT_EQ(forced.count(core::EpochKey{3, 0}), 1u);
  EXPECT_EQ(forced.find(core::EpochKey{9, 9}), forced.end());

  // Equality is order-insensitive because storage is canonical.
  core::ForcedDecisions same;
  same[core::EpochKey{3, 0}] = 4;
  same[core::EpochKey{0, 3}] = 5;
  same[core::EpochKey{2, 1}] = 7;
  same[core::EpochKey{1, 0}] = 9;
  EXPECT_EQ(forced, same);
  same[core::EpochKey{0, 3}] = 1;
  EXPECT_NE(forced, same);
}

TEST(Schedule, LookupSemantics) {
  core::Schedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.lookup(core::EpochKey{0, 0}), mpism::kAnySource);
  schedule.forced[core::EpochKey{1, 2}] = 3;
  EXPECT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.lookup(core::EpochKey{1, 2}), 3);
  EXPECT_EQ(schedule.lookup(core::EpochKey{1, 3}), mpism::kAnySource);
}

TEST(EpochKey, OrderingIsRankThenIndex) {
  using core::EpochKey;
  EXPECT_LT((EpochKey{0, 5}), (EpochKey{1, 0}));
  EXPECT_LT((EpochKey{1, 0}), (EpochKey{1, 1}));
  EXPECT_EQ((EpochKey{2, 3}), (EpochKey{2, 3}));
}

}  // namespace
}  // namespace dampi
