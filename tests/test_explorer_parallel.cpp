// Replay-worker pool determinism: explore() with jobs=N must produce
// results bit-identical to jobs=1 — same interleaving count, same bugs at
// the same indices with the same reproducer schedules, same alerts —
// because outcomes are merged on the exploring thread in sequential DFS
// order regardless of which thread executed each replay. These tests run
// under ThreadSanitizer via the `concurrency` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/decision_io.hpp"
#include "core/explorer.hpp"
#include "support/reference_enumerator.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/matmult.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::BugRecord;
using core::ClockMode;
using core::Explorer;
using core::ExplorerOptions;
using core::Schedule;
using mpism::Proc;

/// Everything the walk decides, in a comparable form. Deliberately
/// includes per-bug reproducer schedules (serialized as decision files)
/// and the dedup'd alert list in first-seen order.
struct ExploreFingerprint {
  std::uint64_t interleavings = 0;
  std::vector<std::string> bugs;
  std::vector<std::string> alerts;
  std::uint64_t prefix_mismatches = 0;

  friend bool operator==(const ExploreFingerprint&,
                         const ExploreFingerprint&) = default;
};

ExploreFingerprint fingerprint(const core::ExploreResult& result) {
  ExploreFingerprint fp;
  fp.interleavings = result.interleavings;
  for (const BugRecord& bug : result.bugs) {
    fp.bugs.push_back(
        std::to_string(static_cast<int>(bug.kind)) + "@" +
        std::to_string(bug.interleaving) + "\n" +
        core::serialize_schedule(bug.schedule));
  }
  fp.alerts = result.unsafe_alerts;
  fp.prefix_mismatches = result.prefix_mismatches;
  return fp;
}

ExploreFingerprint explore_with_jobs(ExplorerOptions options, int jobs,
                                     const mpism::ProgramFn& program,
                                     core::ExploreResult* out = nullptr) {
  options.jobs = jobs;
  Explorer explorer(options);
  auto result = explorer.explore(program);
  if (out != nullptr) *out = std::move(result);
  return out != nullptr ? fingerprint(*out) : fingerprint(result);
}

void expect_jobs_invariant(const ExplorerOptions& options,
                           const mpism::ProgramFn& program,
                           const char* what) {
  core::ExploreResult sequential;
  const auto base = explore_with_jobs(options, 1, program, &sequential);
  for (const int jobs : {2, 4}) {
    core::ExploreResult parallel;
    const auto fp = explore_with_jobs(options, jobs, program, &parallel);
    EXPECT_EQ(fp.interleavings, base.interleavings)
        << what << " jobs=" << jobs;
    EXPECT_EQ(fp.bugs, base.bugs) << what << " jobs=" << jobs;
    EXPECT_EQ(fp.alerts, base.alerts) << what << " jobs=" << jobs;
    EXPECT_EQ(fp.prefix_mismatches, base.prefix_mismatches)
        << what << " jobs=" << jobs;
    // Accounting closes: every run was executed exactly once, inline or
    // by a worker, and consumed runs match the interleaving count.
    const core::PoolStats& pool = parallel.pool;
    EXPECT_EQ(pool.jobs, jobs);
    EXPECT_EQ(pool.inline_runs + pool.speculative_hits,
              parallel.interleavings);
    EXPECT_EQ(pool.worker_runs, pool.speculative_hits +
                                    pool.speculative_waste);
    EXPECT_EQ(pool.run_wall_seconds.count(),
              pool.inline_runs + pool.worker_runs);
  }
  EXPECT_EQ(sequential.pool.jobs, 1);
  EXPECT_EQ(sequential.pool.worker_runs, 0u);
  EXPECT_EQ(sequential.pool.inline_runs, sequential.interleavings);
}

/// fig3 with the native race removed: rank 1's wildcard match depends on
/// which sender's eager message arrives before the receive posts, so a
/// bare fig3 exploration is not reproducible run to run (the bug is
/// sometimes hit natively in run 1). Holding the *receiver* back until
/// both sends are queued — named iprobes are not wildcard decisions —
/// hands the match to the deterministic lowest-source policy, giving the
/// byte-exact baseline the jobs comparison needs.
mpism::ProgramFn fig3_bug_determinized() {
  return [](Proc& p) {
    if (p.rank() == 1) {
      while (!(p.iprobe(0, 0) && p.iprobe(2, 0))) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    workloads::fig3_wildcard_bug(p);
  };
}

/// Deterministic buggy fan-in (3 ranks): both sends are queued before the
/// barrier, so the root's first wildcard receive always sees two
/// candidates and the lowest-source policy pins the self-run. The require
/// fires only when rank 2's message is matched first — reachable solely
/// through a replayed flip, at a byte-stable interleaving index.
mpism::ProgramFn ordered_fan_in_bug() {
  return [](Proc& p) {
    if (p.rank() == 0) {
      p.barrier();
      mpism::Bytes data;
      mpism::RequestId r1 = p.irecv(mpism::kAnySource, 0);
      p.wait(r1, &data);
      const int first = mpism::unpack<int>(data);
      mpism::RequestId r2 = p.irecv(mpism::kAnySource, 0);
      p.wait(r2, &data);
      p.require(first != 2, "fan-in: first == 2");
    } else if (p.rank() <= 2) {
      p.send(0, 0, mpism::pack<int>(p.rank()));
      p.barrier();
    } else {
      p.barrier();
    }
  };
}

TEST(ExplorerParallel, Fig3BuggyIsJobsInvariant) {
  expect_jobs_invariant(explorer_options(3), fig3_bug_determinized(),
                        "fig3-bug");
}

// The raw (natively racy) fig3 bug: whatever the self-run happened to
// match, every jobs value must find the bug, the reproducer must replay
// it, and the set of visited outcomes must match the sequential walk's
// guarantee. (Exact fingerprints are compared on the determinized
// variant above — two sequential explorations of raw fig3 already
// disagree on interleaving indices.)
TEST(ExplorerParallel, Fig3RawBugFoundAtEveryJobsValue) {
  const ExplorerOptions options = explorer_options(3);
  for (const int jobs : {1, 2, 4}) {
    ExplorerOptions opt = options;
    opt.jobs = jobs;
    std::set<OutcomeSignature> outcomes;
    Explorer explorer(opt);
    const auto result = explorer.explore(
        workloads::fig3_wildcard_bug,
        [&outcomes](const core::RunTrace& trace,
                    const mpism::RunReport& report, const Schedule&) {
          outcomes.insert(signature_of(trace, report));
        });
    ASSERT_TRUE(result.found_bug()) << "jobs=" << jobs;
    EXPECT_LE(result.interleavings, 2u) << "jobs=" << jobs;
    // Both reachable outcomes were visited regardless of jobs.
    EXPECT_EQ(outcomes.size(), result.interleavings) << "jobs=" << jobs;
    const auto rerun = run_dampi_once(options, result.bugs.back().schedule,
                                      workloads::fig3_wildcard_bug);
    ASSERT_FALSE(rerun.report.errors.empty()) << "jobs=" << jobs;
    EXPECT_NE(rerun.report.errors[0].message.find("x == 33"),
              std::string::npos)
        << "jobs=" << jobs;
  }
}

TEST(ExplorerParallel, Fig3BenignIsJobsInvariant) {
  expect_jobs_invariant(explorer_options(3), workloads::fig3_benign,
                        "fig3-benign");
}

TEST(ExplorerParallel, Fig4CrossCoupledIsJobsInvariant) {
  ExplorerOptions options = explorer_options(4);
  options.clock_mode = ClockMode::kVector;  // richer interleaving space
  expect_jobs_invariant(options, workloads::fig4_cross_coupled, "fig4");
}

TEST(ExplorerParallel, MatmultIsJobsInvariant) {
  ExplorerOptions options = explorer_options(3);
  options.max_interleavings = 64;
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 2;
  expect_jobs_invariant(
      options, [config](Proc& p) { workloads::matmult(p, config); },
      "matmult");
}

TEST(ExplorerParallel, MatmultWithMixingBoundIsJobsInvariant) {
  ExplorerOptions options = explorer_options(4);
  options.mixing_bound = 1;
  options.max_interleavings = 256;
  workloads::MatmultConfig config;
  config.n = 6;
  config.chunk_rows = 2;
  expect_jobs_invariant(
      options, [config](Proc& p) { workloads::matmult(p, config); },
      "matmult-k1");
}

TEST(ExplorerParallel, FanInWithMixingBoundIsJobsInvariant) {
  ExplorerOptions options = explorer_options(4);
  options.mixing_bound = 2;
  options.max_interleavings = 1u << 14;
  expect_jobs_invariant(
      options, [](Proc& p) { workloads::fan_in_rounds(p, 2); }, "fan-in-k2");
}

TEST(ExplorerParallel, StopOnFirstErrorIsJobsInvariant) {
  ExplorerOptions options = explorer_options(3);
  options.stop_on_first_error = true;
  expect_jobs_invariant(options, fig3_bug_determinized(),
                        "fig3-stop-first");

  // A bug reachable only through a replayed flip: the walk must cross
  // the deterministic self-run, flip, and stop at the same index no
  // matter how many workers were speculating ahead.
  ExplorerOptions fan = explorer_options(3);
  fan.stop_on_first_error = true;
  expect_jobs_invariant(fan, ordered_fan_in_bug(), "fan-in-stop-first");
}

// The raw buggy matmult under stop_on_first_error: the master's wildcard
// matches race in the self-run, so interleaving indices are not
// reproducible even sequentially — but every jobs value must still find
// the order bug and hand back a replaying reproducer.
TEST(ExplorerParallel, StopOnFirstErrorFindsRacyMatmultBug) {
  ExplorerOptions options = explorer_options(3);
  options.stop_on_first_error = true;
  options.max_interleavings = 64;
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 2;
  config.inject_order_bug = true;
  const auto program = [config](Proc& p) { workloads::matmult(p, config); };
  for (const int jobs : {1, 2, 4}) {
    ExplorerOptions opt = options;
    opt.jobs = jobs;
    Explorer explorer(opt);
    const auto result = explorer.explore(program);
    ASSERT_TRUE(result.found_bug()) << "jobs=" << jobs;
    const auto rerun =
        run_dampi_once(options, result.bugs.back().schedule, program);
    ASSERT_FALSE(rerun.report.errors.empty()) << "jobs=" << jobs;
    EXPECT_NE(rerun.report.errors[0].message.find("matmult:"),
              std::string::npos)
        << "jobs=" << jobs;
  }
}

TEST(ExplorerParallel, InterleavingBudgetIsJobsInvariant) {
  ExplorerOptions options = explorer_options(4);
  options.max_interleavings = 5;
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 1;
  const auto program = [config](Proc& p) { workloads::matmult(p, config); };
  for (const int jobs : {1, 4}) {
    core::ExploreResult result;
    explore_with_jobs(options, jobs, program, &result);
    EXPECT_EQ(result.interleavings, 5u) << "jobs=" << jobs;
    EXPECT_TRUE(result.interleaving_budget_exhausted) << "jobs=" << jobs;
    // The budget bounds *consumed* runs exactly; speculative overshoot is
    // only the in-flight work stranded by the early stop, which the
    // backlog cap keeps small.
    EXPECT_EQ(result.pool.inline_runs + result.pool.speculative_hits,
              result.interleavings);
    EXPECT_LE(result.pool.speculative_waste, 12u);  // backlog cap at jobs=4
  }
}

TEST(ExplorerParallel, RunStatsCallbackSeesEveryRun) {
  ExplorerOptions options = explorer_options(3);
  options.max_interleavings = 64;
  options.jobs = 4;
  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> speculative{0};
  options.run_stats = [&](const core::RunStats& rs) {
    ++callbacks;
    if (rs.speculative) {
      ++speculative;
      EXPECT_EQ(rs.interleaving, 0u);
    } else if (rs.interleaving > 0) {
      ++consumed;
    }
  };
  workloads::MatmultConfig config;
  config.n = 4;
  config.chunk_rows = 2;
  Explorer explorer(options);
  const auto result = explorer.explore(
      [config](Proc& p) { workloads::matmult(p, config); });
  // Every consumed interleaving is announced under its deterministic
  // index; worker runs are additionally announced at completion.
  EXPECT_EQ(consumed.load(), result.interleavings);
  EXPECT_EQ(speculative.load(), result.pool.worker_runs);
  EXPECT_EQ(callbacks.load(),
            result.interleavings + result.pool.worker_runs);
}

// The exploring thread steals a queued speculation it needs immediately,
// so tiny pools never deadlock and saturated backlogs self-correct.
TEST(ExplorerParallel, DeepFanInWithTwoJobs) {
  ExplorerOptions options = explorer_options(4);
  options.max_interleavings = 1u << 12;
  const auto program = [](Proc& p) { workloads::fan_in_rounds(p, 2); };
  core::ExploreResult seq;
  explore_with_jobs(options, 1, program, &seq);
  core::ExploreResult par;
  explore_with_jobs(options, 2, program, &par);
  EXPECT_EQ(par.interleavings, seq.interleavings);
  EXPECT_GT(par.interleavings, 8u);  // a genuinely multi-run space
}

}  // namespace
}  // namespace dampi::test
