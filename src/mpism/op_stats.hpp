// Per-run MPI operation statistics, categorized as in the paper's Table I:
// Send-Recv (all point-to-point), Collective, Wait (all wait/test
// variants). Local-only operations the paper excludes from its log are
// counted under kOther and not reported in Table I rows.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mpism/types.hpp"

namespace dampi::mpism {

struct OpStats {
  static constexpr std::size_t kNumCategories = 4;

  /// counts[category][rank]
  std::array<std::vector<std::uint64_t>, kNumCategories> counts;
  /// Messages injected by tool layers (piggyback traffic), total.
  std::uint64_t tool_messages = 0;

  void init(int nprocs) {
    for (auto& c : counts) c.assign(static_cast<std::size_t>(nprocs), 0);
    tool_messages = 0;
  }

  void bump(OpCategory cat, Rank rank) {
    counts[static_cast<std::size_t>(cat)][static_cast<std::size_t>(rank)]++;
  }

  std::uint64_t total(OpCategory cat) const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts[static_cast<std::size_t>(cat)]) sum += c;
    return sum;
  }

  /// Total across the Table I categories (Send-Recv + Collective + Wait).
  std::uint64_t total_reported() const {
    return total(OpCategory::kSendRecv) + total(OpCategory::kCollective) +
           total(OpCategory::kWait);
  }

  std::uint64_t per_proc(OpCategory cat) const {
    const auto n = counts[0].size();
    return n == 0 ? 0 : total(cat) / n;
  }
};

}  // namespace dampi::mpism
