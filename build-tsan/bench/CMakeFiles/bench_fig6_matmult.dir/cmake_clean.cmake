file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_matmult.dir/bench_fig6_matmult.cpp.o"
  "CMakeFiles/bench_fig6_matmult.dir/bench_fig6_matmult.cpp.o.d"
  "bench_fig6_matmult"
  "bench_fig6_matmult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_matmult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
