// Quickstart: verify a 3-rank MPI program with a wildcard-receive bug.
//
// The program is the paper's Fig. 3: P0 sends 22 and P2 sends 33 to P1,
// which receives one of them with MPI_ANY_SOURCE and crashes iff it got
// 33. Conventional testing almost always sees the benign outcome (the
// runtime biases the match); DAMPI records the alternate match as a
// potential match during the first run and *enforces* it in a replay,
// catching the bug deterministically.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/verifier.hpp"
#include "mpism/types.hpp"

using namespace dampi;

namespace {

void buggy_program(mpism::Proc& p) {
  constexpr mpism::Tag tag = 0;
  switch (p.rank()) {
    case 0:
      p.send(1, tag, mpism::pack<int>(22));
      break;
    case 2:
      p.send(1, tag, mpism::pack<int>(33));
      break;
    case 1: {
      mpism::Bytes data;
      p.recv(mpism::kAnySource, tag, &data);  // the non-deterministic match
      const int x = mpism::unpack<int>(data);
      p.require(x != 33, "crash: x == 33 (paper Fig. 3)");
      break;
    }
    default:
      break;
  }
}

}  // namespace

int main() {
  core::VerifyOptions options;
  options.explorer.nprocs = 3;

  core::Verifier verifier(options);
  const core::VerifyResult result = verifier.verify(buggy_program);

  std::printf("interleavings explored : %llu\n",
              static_cast<unsigned long long>(
                  result.exploration.interleavings));
  std::printf("wildcard epochs (R*)   : %llu\n",
              static_cast<unsigned long long>(
                  result.exploration.wildcard_recv_epochs));
  std::printf("slowdown vs native     : %.2fx\n", result.slowdown);

  if (!result.error_found) {
    std::printf("\nNo bug found — unexpected for this program!\n");
    return 1;
  }
  const auto& bug = result.exploration.bugs.back();
  std::printf("\nBUG FOUND in interleaving %llu:\n",
              static_cast<unsigned long long>(bug.interleaving));
  for (const auto& error : bug.errors) {
    std::printf("  rank %d: %s\n", error.rank, error.message.c_str());
  }
  if (bug.schedule.empty()) {
    std::printf("reproducing epoch decisions: (none — the very first "
                "self-run already matched the buggy send)\n");
  } else {
    std::printf("reproducing epoch decisions:\n");
    for (const auto& [key, src] : bug.schedule.forced) {
      std::printf("  rank %d, nd-event #%llu -> match source %d\n", key.rank,
                  static_cast<unsigned long long>(key.nd_index), src);
    }
    std::printf("\n(The decision file above deterministically replays the "
                "failing interleaving.)\n");
  }
  return 0;
}
