// Fault-free op-inventory discovery: what a sweep can inject into.
//
// The fault grammar names points by (rank, op_index) where op_index is
// the 1-based count of the rank's MPI calls crossing the tool stack —
// the coordinate FaultLayer fires on. The inventory harvests exactly
// that coordinate space with one instrumented fault-free run: a
// counting layer stacked where FaultLayer would sit records, per rank,
// one kind character per call ('s' isend, 'r' irecv, 'w' wait,
// 'p' probe, 'c' collective). Deterministic under the coop scheduler,
// which is what makes the downstream plan enumeration (and therefore
// the whole sweep report) a pure function of (program, options, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "mpism/runtime.hpp"

namespace dampi::sweep {

struct OpInventory {
  /// ops[rank][i] is the kind of rank's (i+1)-th MPI call.
  std::vector<std::string> ops;
  /// The discovery run's own outcome, so a sweep over a program that is
  /// already buggy fault-free says so instead of attributing the bug to
  /// every injection point.
  bool baseline_deadlocked = false;
  bool baseline_errored = false;
  std::string error;  ///< non-empty when the harvest itself failed

  std::uint64_t total_ops() const {
    std::uint64_t total = 0;
    for (const std::string& rank_ops : ops) total += rank_ops.size();
    return total;
  }
  std::uint64_t max_ops() const {
    std::uint64_t most = 0;
    for (const std::string& rank_ops : ops) {
      if (rank_ops.size() > most) most = rank_ops.size();
    }
    return most;
  }
};

/// One fault-free guided run of `program` under `base` (fault plan and
/// resilience hooks stripped), harvesting the per-rank op inventory.
/// A deadlocking/erroring baseline still yields the ops counted up to
/// the stop — those are valid injection coordinates.
OpInventory harvest_inventory(const core::ExplorerOptions& base,
                              const mpism::ProgramFn& program);

}  // namespace dampi::sweep
