#include "core/clock_state.hpp"

#include <cstring>

#include "common/check.hpp"

namespace dampi::core {
namespace {

using VcValue = clocks::VectorClock::Value;

std::vector<VcValue> decode_vc(const mpism::Bytes& bytes) {
  return mpism::unpack_vec<VcValue>(bytes);
}

}  // namespace

ClockState::ClockState(ClockMode mode, int nprocs, int rank)
    : mode_(mode), vector_(nprocs, rank) {}

void ClockState::tick() {
  // Both trackers advance so either view stays usable (the Lamport value
  // is the trace-ordering key even in vector mode).
  lamport_.tick();
  vector_.tick();
}

void ClockState::merge(const mpism::Bytes& remote) {
  if (remote.empty()) return;
  if (mode_ == ClockMode::kLamport) {
    lamport_.merge(mpism::unpack<std::uint64_t>(remote));
  } else {
    const auto components = decode_vc(remote);
    vector_.merge(components);
    // Keep the scalar view consistent: the Lamport analogue of a vector
    // merge is max over the remote's own-entries... a scalar max over the
    // sum is not meaningful, so track the max component instead, which
    // preserves per-rank monotonicity for trace ordering.
    std::uint64_t max_c = 0;
    for (VcValue v : components) max_c = std::max(max_c, v);
    lamport_.merge(max_c);
  }
}

mpism::Bytes ClockState::serialize() const {
  if (mode_ == ClockMode::kLamport) {
    return mpism::pack<std::uint64_t>(lamport_.value());
  }
  return mpism::pack_vec(vector_.components());
}

void ClockState::serialize_into(mpism::Bytes* out) const {
  if (mode_ == ClockMode::kLamport) {
    const std::uint64_t v = lamport_.value();
    out->resize(sizeof(v));
    std::memcpy(out->data(), &v, sizeof(v));
    return;
  }
  const auto& components = vector_.components();
  out->resize(components.size() * sizeof(VcValue));
  if (!components.empty()) {
    std::memcpy(out->data(), components.data(), out->size());
  }
}

bool ClockState::is_late(
    const mpism::Bytes& msg_clock, std::uint64_t epoch_lc,
    const std::vector<VcValue>& epoch_vc) const {
  if (msg_clock.empty()) return false;
  if (mode_ == ClockMode::kLamport) {
    return mpism::unpack<std::uint64_t>(msg_clock) < epoch_lc;
  }
  return clocks::VectorClock::not_after(decode_vc(msg_clock), epoch_vc);
}

bool ClockState::is_after(
    const mpism::Bytes& msg_clock, std::uint64_t epoch_lc,
    const std::vector<VcValue>& epoch_vc) const {
  if (msg_clock.empty()) return true;
  if (mode_ == ClockMode::kLamport) {
    return mpism::unpack<std::uint64_t>(msg_clock) >= epoch_lc;
  }
  const auto o =
      clocks::VectorClock::compare(decode_vc(msg_clock), epoch_vc);
  return o == clocks::Ordering::kAfter || o == clocks::Ordering::kEqual;
}

void ClockState::merge_epoch(
    std::uint64_t lc, const std::vector<clocks::VectorClock::Value>& vc) {
  lamport_.merge(lc);
  if (mode_ == ClockMode::kVector && !vc.empty()) vector_.merge(vc);
}

mpism::Bytes ClockState::merge_serialized(
    const std::vector<mpism::Bytes>& all) {
  DAMPI_CHECK(!all.empty());
  if (all[0].size() == sizeof(std::uint64_t)) {
    std::uint64_t best = 0;
    for (const mpism::Bytes& b : all) {
      best = std::max(best, mpism::unpack<std::uint64_t>(b));
    }
    return mpism::pack(best);
  }
  auto merged = decode_vc(all[0]);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const auto other = decode_vc(all[i]);
    DAMPI_CHECK(other.size() == merged.size());
    for (std::size_t k = 0; k < merged.size(); ++k) {
      merged[k] = std::max(merged[k], other[k]);
    }
  }
  return mpism::pack_vec(merged);
}

}  // namespace dampi::core
