# Empty dependencies file for test_mpism_collectives.
# This may be replaced when dependencies are built.
