#include "sweep/types.hpp"

#include "common/strutil.hpp"

namespace dampi::sweep {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kClean:
      return "clean";
    case Verdict::kDeadlock:
      return "deadlock";
    case Verdict::kHang:
      return "hang";
    case Verdict::kErrorPropagated:
      return "error-propagated";
    case Verdict::kMasked:
      return "fault-masked";
    case Verdict::kSweepError:
      return "sweep-error";
  }
  return "?";
}

bool parse_verdict(const std::string& name, Verdict* out) {
  for (const Verdict v :
       {Verdict::kClean, Verdict::kDeadlock, Verdict::kHang,
        Verdict::kErrorPropagated, Verdict::kMasked, Verdict::kSweepError}) {
    if (name == verdict_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::string sweep_kinds_spec(const SweepKinds& kinds) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (kinds.abort_) append("abort");
  if (kinds.delay_) append("delay");
  if (kinds.error_) append("error");
  if (kinds.flaky_) append("flaky");
  return out;
}

bool parse_sweep_kinds(const std::string& spec, SweepKinds* out,
                       std::string* error) {
  SweepKinds kinds;
  kinds.abort_ = kinds.error_ = kinds.delay_ = kinds.flaky_ = false;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item == "all") {
      kinds.abort_ = kinds.error_ = kinds.delay_ = kinds.flaky_ = true;
    } else if (item == "abort") {
      kinds.abort_ = true;
    } else if (item == "error") {
      kinds.error_ = true;
    } else if (item == "delay") {
      kinds.delay_ = true;
    } else if (item == "flaky") {
      kinds.flaky_ = true;
    } else {
      *error = strfmt(
          "sweep kinds '%s': unknown family '%s' "
          "(expected abort|error|delay|flaky|all)",
          spec.c_str(), item.c_str());
      return false;
    }
    if (comma == spec.size()) break;
  }
  if (!kinds.abort_ && !kinds.error_ && !kinds.delay_ && !kinds.flaky_) {
    *error = strfmt("sweep kinds '%s': no families selected", spec.c_str());
    return false;
  }
  *out = kinds;
  return true;
}

}  // namespace dampi::sweep
