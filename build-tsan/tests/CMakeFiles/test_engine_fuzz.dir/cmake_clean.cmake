file(REMOVE_RECURSE
  "CMakeFiles/test_engine_fuzz.dir/test_engine_fuzz.cpp.o"
  "CMakeFiles/test_engine_fuzz.dir/test_engine_fuzz.cpp.o.d"
  "test_engine_fuzz"
  "test_engine_fuzz.pdb"
  "test_engine_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
