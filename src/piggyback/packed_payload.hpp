// Payload-packing piggyback: the clock is prepended to each message's
// payload and stripped at the receiver. The ablation alternative to the
// separate-message mechanism: no extra messages, but every payload is
// copied/resized and probed sizes over-report (probes cannot strip the
// prefix because they do not consume the message) — the trade-offs the
// piggyback paper [15] reports.
#pragma once

#include "piggyback/transport.hpp"

namespace dampi::piggyback {

class PackedPayloadTransport final : public Transport {
 public:
  void on_pre_send(mpism::ToolCtx& ctx, mpism::SendCall& call,
                   const mpism::Bytes& clock) override;
  mpism::Bytes on_recv_complete(mpism::ToolCtx& ctx,
                                mpism::ReqCompletion& c) override;
};

}  // namespace dampi::piggyback
