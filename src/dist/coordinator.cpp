#include "dist/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "core/shard.hpp"
#include "dist/protocol.hpp"
#include "obs/metrics.hpp"

namespace dampi::dist {

namespace {

struct ShardState {
  std::uint64_t id = 0;
  core::Checkpoint cp;
  std::string text;  ///< serialized once; resent verbatim on requeue
  int deaths = 0;
};

struct WorkerProc {
  int id = -1;
  pid_t pid = -1;
  bool reaped = false;
  std::unique_ptr<MessageChannel> chan;
  bool hello = false;
  int spawn_failures = 0;
  std::optional<std::uint64_t> assigned;
  /// A STEAL was sent and neither STOLEN, NO_STEAL, nor the worker's
  /// RESULT has answered it yet.
  bool steal_outstanding = false;
};

}  // namespace

DistResult run_distributed(const DistOptions& options,
                           const mpism::ProgramFn& program) {
  DistResult out;
  // Writes to a dead worker must fail with EPIPE, not kill the campaign.
  std::signal(SIGPIPE, SIG_IGN);

  const std::string fingerprint = core::options_fingerprint(options.explorer);

  // --- Discovery (or resume restore) --------------------------------------
  core::ExplorerOptions disc = options.explorer;
  disc.discovery_only = true;
  core::ExploreResult discovered = core::Explorer(disc).explore(program);
  core::Checkpoint root;
  root.fingerprint = fingerprint;
  root.frames = discovered.frontier;
  // Snapshot the fault plan's fire counters after discovery: every
  // shard (split, escape, or requeued) carries them, so worker
  // processes — which parse their own fresh plan — resume the campaign
  // accounting instead of re-arming flaky points discovery exhausted.
  if (options.explorer.fault) {
    root.fault_fires = options.explorer.fault->fire_counts();
  }

  const bool discovery_aborted =
      discovered.interrupted || discovered.time_budget_exhausted;
  const bool stop_early = options.explorer.stop_on_first_error &&
                          !discovered.bugs.empty();
  core::CampaignMerge merge(std::move(discovered), options.explorer.por);

  // --- Shard bookkeeping ---------------------------------------------------
  std::map<std::uint64_t, ShardState> shards;
  std::deque<std::uint64_t> queue;
  std::uint64_t next_shard_id = 1;
  auto add_shard = [&](core::Checkpoint cp) {
    ShardState st;
    st.id = next_shard_id++;
    // Escape/steal shards are built without the discovery-time fault
    // accounting; stamp it on so every worker resumes the same counters.
    if (cp.fault_fires.empty()) cp.fault_fires = root.fault_fires;
    st.text = core::serialize_checkpoint(cp);
    st.cp = std::move(cp);
    merge.register_shard_sites(st.cp);
    queue.push_back(st.id);
    shards.emplace(st.id, std::move(st));
  };
  if (!discovery_aborted && !stop_early) {
    for (core::Checkpoint& cp :
         core::split_frontier(root, 0, options.explorer.por)) {
      add_shard(std::move(cp));
      ++out.stats.shards_initial;
    }
  }
  if (queue.empty()) {
    out.exploration = merge.finish();
    return out;
  }

  // --- Worker pool ---------------------------------------------------------
  int listen_fd = -1;
  if (!options.socket_path.empty()) {
    std::string lerr;
    listen_fd = listen_socket(options.socket_path, &lerr);
    if (listen_fd < 0) {
      out.error = lerr;
      out.exploration = merge.finish();
      return out;
    }
    ::fcntl(listen_fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(listen_fd, F_SETFL, O_NONBLOCK);
  }

  std::vector<WorkerProc> workers(
      static_cast<std::size_t>(std::max(1, options.workers)));
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].id = static_cast<int>(i);
  }
  // Channels accepted on the listener, not yet identified by a HELLO.
  std::vector<std::unique_ptr<MessageChannel>> pending;

  bool cancel_broadcast = false;
  bool budget_cancel = false;
  bool external_cancel = false;
  bool shutting_down = false;
  using Clock = std::chrono::steady_clock;
  Clock::time_point grace_deadline{};

  auto fatal = [&](const std::string& message) {
    if (!out.error.empty()) return;
    out.error = message;
    DAMPI_LOG(kError) << "distributed campaign: " << message;
    for (WorkerProc& w : workers) {
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
    }
  };

  auto spawn_worker = [&](WorkerProc& w) {
    int parent_fd = -1;
    std::string spec = options.socket_path;
    std::vector<std::string> argv_strings = options.worker_argv;
    if (spec.empty()) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        fatal("socketpair failed");
        return;
      }
      parent_fd = sv[0];
      // Coordinator-side ends must not leak into workers: a sibling
      // holding a copy would keep the channel open past its owner's
      // death and mask the EOF the death detection relies on.
      ::fcntl(parent_fd, F_SETFD, FD_CLOEXEC);
      spec = "fd:" + std::to_string(sv[1]);
      argv_strings.push_back("--worker");
      argv_strings.push_back("--worker-id");
      argv_strings.push_back(std::to_string(w.id));
      argv_strings.push_back("--coordinator-socket");
      argv_strings.push_back(spec);
      std::vector<char*> argv;
      argv.reserve(argv_strings.size() + 1);
      for (std::string& s : argv_strings) argv.push_back(s.data());
      argv.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(parent_fd);
        ::close(sv[1]);
        fatal("fork failed");
        return;
      }
      if (pid == 0) {
        ::execvp(argv[0], argv.data());
        _exit(127);
      }
      ::close(sv[1]);
      w.pid = pid;
      w.chan = std::make_unique<MessageChannel>(parent_fd);
    } else {
      argv_strings.push_back("--worker");
      argv_strings.push_back("--worker-id");
      argv_strings.push_back(std::to_string(w.id));
      argv_strings.push_back("--coordinator-socket");
      argv_strings.push_back(spec);
      std::vector<char*> argv;
      argv.reserve(argv_strings.size() + 1);
      for (std::string& s : argv_strings) argv.push_back(s.data());
      argv.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid < 0) {
        fatal("fork failed");
        return;
      }
      if (pid == 0) {
        ::execvp(argv[0], argv.data());
        _exit(127);
      }
      w.pid = pid;
      w.chan.reset();  // attached at accept + HELLO
    }
    w.reaped = false;
    w.hello = false;
    w.assigned.reset();
    w.steal_outstanding = false;
    ++out.stats.workers_spawned;
  };

  auto broadcast = [&](MsgType type) {
    for (WorkerProc& w : workers) {
      if (w.pid > 0 && w.chan) w.chan->send(type, "");
    }
  };

  auto start_cancel = [&] {
    if (cancel_broadcast) return;
    cancel_broadcast = true;
    broadcast(MsgType::kCancel);
    grace_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            options.shutdown_grace_seconds));
    // Queued-but-unassigned shards will not run: coverage is partial,
    // which the budget/interrupted flags below record.
    for (const std::uint64_t id : queue) shards.erase(id);
    queue.clear();
  };

  auto handle_death = [&](WorkerProc& w) {
    if (w.pid < 0) return;
    if (w.chan) w.chan->close();
    if (!w.reaped) {
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.reaped = true;
    }
    w.pid = -1;
    w.steal_outstanding = false;
    if (shutting_down) return;
    ++out.stats.worker_deaths;
    if (!w.hello) {
      ++w.spawn_failures;
      if (w.spawn_failures >= options.max_spawn_failures) {
        fatal("worker " + std::to_string(w.id) +
              " repeatedly died before HELLO (bad worker binary or "
              "options?)");
        return;
      }
    }
    if (w.assigned.has_value()) {
      auto it = shards.find(*w.assigned);
      if (it == shards.end()) {
        // Result already merged; nothing to recover.
      } else if (cancel_broadcast) {
        // Under cancel nothing will ever run this shard again — workers
        // are not respawned and assign_work is a no-op — so requeueing
        // it would leave the queue permanently non-empty and the event
        // loop without an exit. Drop it the same way start_cancel
        // dropped the queued-but-unassigned shards: coverage is partial
        // and the budget/interrupted flags record that.
        shards.erase(it);
      } else {
        ShardState& st = it->second;
        ++st.deaths;
        // Prefer the dead worker's own journal: everything it already
        // explored (runs, bugs, counters) is in there, so the resumed
        // shard re-executes only the unflushed tail. Escapes were
        // shipped eagerly and need no recovery.
        if (!options.explorer.checkpoint_path.empty()) {
          const std::string journal = options.explorer.checkpoint_path +
                                      ".w" + std::to_string(w.id);
          std::string jerr;
          auto cp = core::load_checkpoint(journal, fingerprint, &jerr);
          if (cp.has_value()) {
            st.cp = std::move(*cp);
            st.text = core::serialize_checkpoint(st.cp);
            merge.register_shard_sites(st.cp);
          }
        }
        if (st.deaths > options.max_shard_respawns) {
          merge.quarantine_shard();
          ++out.stats.shards_quarantined;
          shards.erase(it);
        } else {
          queue.push_front(st.id);
          ++out.stats.shards_requeued;
        }
      }
      w.assigned.reset();
    }
    if (!cancel_broadcast) spawn_worker(w);
  };

  auto protocol_error = [&](WorkerProc& w, const std::string& what) {
    DAMPI_LOG(kError) << "worker " << w.id << ": " << what
                      << " — killing and requeueing";
    if (w.pid > 0) ::kill(w.pid, SIGKILL);
    handle_death(w);
  };

  auto handle_message = [&](WorkerProc& w, WireMessage& msg) {
    std::string perr;
    switch (msg.type) {
      case MsgType::kHello: {
        const auto hello = parse_hello(msg.payload, &perr);
        if (!hello.has_value()) {
          protocol_error(w, "bad hello: " + perr);
          return;
        }
        if (hello->fingerprint != fingerprint) {
          fatal("worker options fingerprint mismatch\n  worker:      " +
                hello->fingerprint + "\n  coordinator: " + fingerprint);
          return;
        }
        w.hello = true;
        w.spawn_failures = 0;
        break;
      }
      case MsgType::kEscape: {
        const auto escape = parse_escape(msg.payload, fingerprint, &perr);
        if (!escape.has_value()) {
          protocol_error(w, "bad escape: " + perr);
          return;
        }
        if (!cancel_broadcast && merge.escape_is_new(*escape)) {
          add_shard(core::make_escape_shard(*escape, fingerprint));
          ++out.stats.shards_escaped;
        }
        break;
      }
      case MsgType::kStolen: {
        w.steal_outstanding = false;
        std::uint64_t ignored = 0;
        auto cp = parse_shard(msg.payload, fingerprint, &ignored, &perr);
        if (!cp.has_value()) {
          protocol_error(w, "bad stolen shard: " + perr);
          return;
        }
        if (!cancel_broadcast) {
          add_shard(std::move(*cp));
          ++out.stats.shards_stolen;
        }
        break;
      }
      case MsgType::kNoSteal:
        w.steal_outstanding = false;
        break;
      case MsgType::kResult: {
        auto result = parse_worker_result(msg.payload, fingerprint, &perr);
        if (!result.has_value()) {
          protocol_error(w, "bad result: " + perr);
          return;
        }
        merge.add(result->result);
        // Escapes normally arrive eagerly (kEscape); any that rode in
        // the result (in-process configurations) get the same dedup.
        for (const core::EscapedAlt& escape : result->result.escaped) {
          if (!cancel_broadcast && merge.escape_is_new(escape)) {
            add_shard(core::make_escape_shard(escape, fingerprint));
            ++out.stats.shards_escaped;
          }
        }
        if (!result->metrics_dump.empty()) {
          out.worker_metrics.emplace_back(w.id, result->metrics_dump);
        }
        shards.erase(result->shard_id);
        if (w.assigned.has_value() && *w.assigned == result->shard_id) {
          w.assigned.reset();
        }
        w.steal_outstanding = false;  // its walk is over; nothing to give
        break;
      }
      default:
        DAMPI_LOG(kWarn) << "worker " << w.id << ": unexpected message type "
                         << static_cast<int>(msg.type);
        break;
    }
  };

  auto assign_work = [&] {
    if (cancel_broadcast) return;
    for (WorkerProc& w : workers) {
      if (w.pid < 0 || !w.chan || !w.hello || w.assigned.has_value()) continue;
      if (queue.empty()) break;
      const std::uint64_t id = queue.front();
      queue.pop_front();
      w.assigned = id;
      // Retire the worker's previous journal before the shard goes out:
      // if the worker dies after this send but before it processes the
      // message (and removes the file itself), the death path would
      // otherwise requeue the *previous*, already-merged shard's state
      // and double-count it. Unlinking here happens-before the worker's
      // receipt, so the race window is closed.
      if (!options.explorer.checkpoint_path.empty()) {
        const std::string journal = options.explorer.checkpoint_path + ".w" +
                                    std::to_string(w.id);
        std::remove(journal.c_str());
      }
      if (!w.chan->send(MsgType::kShard,
                        serialize_shard(id, shards.at(id).text))) {
        w.chan->close();  // death path requeues on the next drain
      }
    }
    if (!queue.empty()) return;
    // Rebalance: every still-idle worker asks one distinct busy worker
    // to carve off half of its shallowest untried list.
    for (WorkerProc& w : workers) {
      if (w.pid < 0 || !w.chan || !w.hello || w.assigned.has_value()) continue;
      for (WorkerProc& victim : workers) {
        if (victim.id == w.id || victim.pid < 0 || !victim.chan ||
            !victim.assigned.has_value() || victim.steal_outstanding) {
          continue;
        }
        if (victim.chan->send(MsgType::kSteal, "")) {
          victim.steal_outstanding = true;
        }
        break;
      }
    }
  };

  for (WorkerProc& w : workers) {
    spawn_worker(w);
    if (!out.error.empty()) break;
  }

  // --- Event loop ----------------------------------------------------------
  while (out.error.empty()) {
    if (!external_cancel && options.explorer.cancel &&
        options.explorer.cancel->requested()) {
      external_cancel = true;
      start_cancel();
    }
    if (!cancel_broadcast &&
        merge.interleavings() >= options.explorer.max_interleavings) {
      budget_cancel = true;
      start_cancel();
    }
    if (!cancel_broadcast && options.explorer.stop_on_first_error &&
        merge.found_bug()) {
      start_cancel();
    }

    // Accept + identify externally connected workers (path mode).
    if (listen_fd >= 0) {
      for (;;) {
        const int cfd = ::accept(listen_fd, nullptr, nullptr);
        if (cfd < 0) break;
        ::fcntl(cfd, F_SETFD, FD_CLOEXEC);
        pending.push_back(std::make_unique<MessageChannel>(cfd));
      }
      for (std::size_t i = 0; i < pending.size();) {
        WireMessage msg;
        const auto status = pending[i]->recv(&msg, 0);
        if (status == MessageChannel::RecvStatus::kMessage &&
            msg.type == MsgType::kHello) {
          std::string perr;
          const auto hello = parse_hello(msg.payload, &perr);
          bool attached = false;
          if (hello.has_value() && hello->fingerprint == fingerprint) {
            for (WorkerProc& w : workers) {
              if (w.id == hello->worker_id && !w.chan) {
                w.chan = std::move(pending[i]);
                w.hello = true;
                w.spawn_failures = 0;
                attached = true;
                break;
              }
            }
          } else if (hello.has_value()) {
            fatal("worker options fingerprint mismatch\n  worker:      " +
                  hello->fingerprint + "\n  coordinator: " + fingerprint);
          }
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          (void)attached;
        } else if (status == MessageChannel::RecvStatus::kClosed) {
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }

    // Drain every channel, then reap, then hand out work.
    for (WorkerProc& w : workers) {
      if (!w.chan || w.pid < 0) continue;
      for (;;) {
        WireMessage msg;
        const auto status = w.chan->recv(&msg, 0);
        if (status == MessageChannel::RecvStatus::kMessage) {
          handle_message(w, msg);
          if (!out.error.empty()) break;
          if (w.pid < 0) break;  // protocol_error path tore it down
          continue;
        }
        if (status == MessageChannel::RecvStatus::kClosed) handle_death(w);
        break;
      }
      if (!out.error.empty()) break;
    }
    if (!out.error.empty()) break;

    int wstatus = 0;
    pid_t reaped_pid;
    while ((reaped_pid = ::waitpid(-1, &wstatus, WNOHANG)) > 0) {
      for (WorkerProc& w : workers) {
        if (w.pid != reaped_pid) continue;
        w.reaped = true;
        // A path-mode worker that dies before connecting (e.g. execvp
        // failed) has no channel, so the EOF-based death detection can
        // never see it. Account for it here so the slot is respawned
        // and spawn_failures/max_spawn_failures still apply.
        if (!w.chan) handle_death(w);
      }
    }
    if (!out.error.empty()) break;

    assign_work();
    if (!out.error.empty()) break;

    const bool any_assigned =
        std::any_of(workers.begin(), workers.end(), [](const WorkerProc& w) {
          return w.assigned.has_value();
        });
    const bool any_steal =
        std::any_of(workers.begin(), workers.end(), [](const WorkerProc& w) {
          return w.steal_outstanding;
        });
    if (queue.empty() && !any_assigned && !any_steal) {
      if (!shutting_down) {
        shutting_down = true;
        broadcast(MsgType::kShutdown);
        grace_deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.shutdown_grace_seconds));
      }
      const bool all_gone = std::all_of(
          workers.begin(), workers.end(),
          [](const WorkerProc& w) { return w.pid < 0 || w.reaped; });
      if (all_gone) break;
    }
    if ((shutting_down || cancel_broadcast) && Clock::now() > grace_deadline) {
      for (WorkerProc& w : workers) {
        if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
      }
      if (shutting_down) break;
      // Cancelled workers that ignored the grace period die here; their
      // deaths drain above (no respawn under cancel).
      grace_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(
                                              options.shutdown_grace_seconds));
    }

    // Sleep until any channel has data (or 50 ms).
    std::vector<struct pollfd> pfds;
    for (WorkerProc& w : workers) {
      if (w.pid > 0 && w.chan && w.chan->valid()) {
        pfds.push_back({w.chan->fd(), POLLIN, 0});
      }
    }
    if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
    for (auto& p : pending) pfds.push_back({p->fd(), POLLIN, 0});
    if (!pfds.empty()) {
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    }
  }

  // --- Teardown ------------------------------------------------------------
  for (WorkerProc& w : workers) {
    if (w.pid > 0) {
      if (!w.reaped) {
        if (!out.error.empty()) ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
      }
      w.pid = -1;
    }
    if (w.chan) w.chan->close();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
    ::unlink(options.socket_path.c_str());
  }

  out.exploration = merge.finish();
  if (budget_cancel) out.exploration.interleaving_budget_exhausted = true;
  if (external_cancel) out.exploration.interrupted = true;
  if (out.error.empty() && !cancel_broadcast &&
      !options.explorer.checkpoint_path.empty()) {
    // Fully completed campaign: write the merged final state back to the
    // campaign journal (empty frontier = nothing left to resume).
    core::Checkpoint final_cp;
    final_cp.fingerprint = fingerprint;
    final_cp.interleavings = out.exploration.interleavings;
    final_cp.retries = out.exploration.retries;
    final_cp.timeouts = out.exploration.timeouts;
    final_cp.quarantined = out.exploration.quarantined;
    final_cp.divergences = out.exploration.divergences;
    final_cp.prefix_mismatches = out.exploration.prefix_mismatches;
    final_cp.bugs = out.exploration.bugs;
    final_cp.unsafe_alerts = out.exploration.unsafe_alerts;
    core::save_checkpoint(final_cp, options.explorer.checkpoint_path);
    // Every shard's result is merged; retire the per-worker journals so
    // they can't shadow a later campaign sharing this checkpoint path.
    for (const WorkerProc& w : workers) {
      const std::string journal = options.explorer.checkpoint_path + ".w" +
                                  std::to_string(w.id);
      std::remove(journal.c_str());
    }
  }

  static obs::Counter& deaths_metric =
      obs::Registry::instance().counter("dist.worker_deaths");
  static obs::Counter& stolen_metric =
      obs::Registry::instance().counter("dist.shards_stolen");
  static obs::Counter& escaped_metric =
      obs::Registry::instance().counter("dist.shards_escaped");
  static obs::Counter& requeued_metric =
      obs::Registry::instance().counter("dist.shards_requeued");
  deaths_metric.add(static_cast<std::uint64_t>(out.stats.worker_deaths));
  stolen_metric.add(out.stats.shards_stolen);
  escaped_metric.add(out.stats.shards_escaped);
  requeued_metric.add(out.stats.shards_requeued);
  return out;
}

}  // namespace dampi::dist
