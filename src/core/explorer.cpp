#include "core/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_set>

#include "common/logging.hpp"
#include "core/dampi_layer.hpp"
#include "core/replay_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "piggyback/telepathic.hpp"

namespace dampi::core {
namespace {

/// Dedup alerts through a keyed set instead of a linear scan (the vector
/// in ExploreResult keeps first-seen order for reporting). Called only on
/// the exploring thread — outcome merging is single-threaded by design,
/// which is what keeps parallel exploration deterministic.
void collect_alerts(const RunTrace& trace,
                    std::unordered_set<std::string>& seen,
                    ExploreResult& result) {
  for (const UnsafeAlert& alert : trace.alerts) {
    if (seen.insert(alert.detail).second) {
      result.unsafe_alerts.push_back(alert.detail);
    }
  }
}

/// Reproducer for a failing run: the decisions that were forced plus
/// every match the run actually observed. Replaying this schedule pins
/// the entire matching, so even a bug first seen in a native race (empty
/// forced set) replays deterministically.
Schedule reproducer_schedule(const Schedule& forced, const RunTrace& trace) {
  Schedule out = forced;
  for (const EpochRecord& epoch : trace.epochs) {
    if (epoch.matched_src_world < 0) continue;  // never completed
    out.forced.emplace(epoch.key, epoch.matched_src_world);
  }
  return out;
}

void record_bug_if_any(const mpism::RunReport& report,
                       const Schedule& schedule, const RunTrace& trace,
                       std::uint64_t interleaving, ExploreResult& result) {
  if (report.deadlocked) {
    BugRecord bug;
    bug.kind = BugRecord::Kind::kDeadlock;
    bug.interleaving = interleaving;
    bug.deadlock_detail = report.deadlock_detail;
    bug.schedule = reproducer_schedule(schedule, trace);
    result.bugs.push_back(std::move(bug));
  } else if (!report.errors.empty()) {
    BugRecord bug;
    bug.kind = BugRecord::Kind::kError;
    bug.interleaving = interleaving;
    bug.errors = report.errors;
    bug.schedule = reproducer_schedule(schedule, trace);
    result.bugs.push_back(std::move(bug));
  }
}

}  // namespace

Explorer::Explorer(ExplorerOptions options) : options_(std::move(options)) {}

SingleRun run_guided_once(const ExplorerOptions& options,
                          const Schedule& schedule,
                          const mpism::ProgramFn& program) {
  auto sink = std::make_shared<TraceSink>();
  auto shared = std::make_shared<DampiShared>(options, schedule, sink);
  std::shared_ptr<piggyback::TelepathicBoard> board;
  if (options.transport == piggyback::TransportKind::kTelepathic) {
    board = std::make_shared<piggyback::TelepathicBoard>();
  }

  mpism::RunOptions run_options;
  run_options.nprocs = options.nprocs;
  run_options.cost = options.cost;
  run_options.policy = options.policy;
  run_options.policy_seed = options.policy_seed;
  run_options.sched = options.sched;
  run_options.match = options.match;
  run_options.tools = make_dampi_setup(shared, board);

  SingleRun outcome;
  {
    // Scope the Runtime so every DampiLayer flushes (even on abort)
    // before the sink is drained.
    mpism::Runtime runtime(std::move(run_options));
    outcome.report = runtime.run(program);
  }
  outcome.trace = sink->take();
  outcome.divergences = shared->divergences.load(std::memory_order_relaxed);
  return outcome;
}

void Explorer::extend_stack(const RunTrace& trace, int flip_pos,
                            ExploreResult& result) {
  const auto sorted = trace.sorted();
  std::map<EpochKey, const EpochRecord*> by_key;
  for (const EpochRecord* e : sorted) by_key[e->key] = e;

  // Prefix frames: verify the guided replay reproduced each decision
  // (replay-determinism soundness check) and — in unbounded mode only —
  // merge in any alternatives this run revealed that the creating run
  // could not see (e.g. a send that was causally ordered in the old
  // outcome but concurrent in the new one). Full coverage is only
  // promised without a mixing bound; with one, accumulating prefix
  // alternatives would defeat the window and re-explode the search.
  const bool merge_prefix_alts = !options_.mixing_bound.has_value();
  std::set<EpochKey> prefix_keys;
  for (int j = 0; j <= flip_pos; ++j) {
    Frame& frame = stack_[static_cast<std::size_t>(j)];
    prefix_keys.insert(frame.key);
    auto it = by_key.find(frame.key);
    if (it == by_key.end() ||
        it->second->matched_src_world != frame.taken_src) {
      ++result.prefix_mismatches;
      DAMPI_LOG(kWarn) << "replay prefix mismatch at epoch (rank "
                       << frame.key.rank << ", nd " << frame.key.nd_index
                       << ")";
      continue;
    }
    if (merge_prefix_alts && frame.record_alts) {
      for (const auto& [src, match] : it->second->alternatives) {
        if (frame.seen.insert(src).second) frame.untried.push_back(src);
      }
    }
  }

  // Budget for epochs discovered below the flip: unbounded mode has no
  // window; bounded mode inherits the flipped frame's remaining budget
  // (anchored windows). Initial-trace epochs always record alternatives
  // and each carries a fresh window of k.
  constexpr int kNoLimit = 1 << 28;
  const int k = options_.mixing_bound.value_or(kNoLimit);
  const int window_budget =
      flip_pos < 0 ? kNoLimit
                   : stack_[static_cast<std::size_t>(flip_pos)].mix_budget;

  int new_depth = 0;
  for (const EpochRecord* epoch : sorted) {
    if (prefix_keys.count(epoch->key) != 0) continue;
    ++new_depth;
    Frame frame;
    frame.key = epoch->key;
    frame.lc = epoch->lc;
    frame.taken_src = epoch->matched_src_world;
    frame.seen.insert(frame.taken_src);
    const bool within_window = new_depth <= window_budget;
    frame.mix_budget =
        flip_pos < 0 ? k : std::max(window_budget - new_depth, 0);
    frame.record_alts = within_window && !epoch->in_ignored_region;
    if (frame.record_alts) {
      frame.untried.reserve(epoch->alternatives.size());
      for (const auto& [src, match] : epoch->alternatives) {
        if (frame.seen.insert(src).second) frame.untried.push_back(src);
      }
    }
    DAMPI_TEVENT(obs::EventKind::kDecisionPush, obs::Phase::kInstant,
                 frame.key.rank,
                 static_cast<std::int32_t>(frame.key.nd_index),
                 static_cast<std::int32_t>(frame.untried.size()));
    stack_.push_back(std::move(frame));
  }
}

Schedule Explorer::schedule_for(int frame_pos, mpism::Rank alt) const {
  Schedule schedule;
  for (int j = 0; j < frame_pos; ++j) {
    const Frame& f = stack_[static_cast<std::size_t>(j)];
    schedule.forced[f.key] = f.taken_src;
  }
  schedule.forced[stack_[static_cast<std::size_t>(frame_pos)].key] = alt;
  return schedule;
}

void Explorer::speculate_frontier(ReplayPool& pool,
                                  const ExploreResult& result) {
  // Every untried alternative on the stack is a run the sequential walk
  // is guaranteed to request later with exactly this prefix: taken_src
  // above a frame cannot change before the frame itself is flipped.
  // Speculation is therefore only ever wasted when a budget or
  // stop_on_first_error ends the walk early. Deepest first matches
  // consumption order; untried is consumed back() first.
  std::uint64_t planned =
      result.interleavings + static_cast<std::uint64_t>(pool.outstanding());
  for (int i = static_cast<int>(stack_.size()) - 1; i >= 0; --i) {
    const Frame& frame = stack_[static_cast<std::size_t>(i)];
    for (auto it = frame.untried.rbegin(); it != frame.untried.rend(); ++it) {
      if (planned + 1 >= options_.max_interleavings) return;
      if (!pool.speculate(schedule_for(i, *it))) return;
      ++planned;
    }
  }
}

ExploreResult Explorer::explore(const mpism::ProgramFn& program,
                                const RunObserver& observer) {
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  ExploreResult result;
  stack_.clear();
  std::unordered_set<std::string> alert_keys;
  ReplayPool pool(options_, program);
  DAMPI_TRACE_THREAD_LANE("explore");

  // Initial discovery execution: SELF_RUN unless the caller pinned the
  // root interleaving through options_.initial_schedule.
  SingleRun first = pool.take(options_.initial_schedule, 1);
  result.interleavings = 1;
  result.first_report = first.report;
  result.wildcard_recv_epochs = first.trace.wildcard_recv_epochs;
  result.wildcard_probe_epochs = first.trace.wildcard_probe_epochs;
  result.potential_matches_first_run = first.trace.potential_matches;
  result.first_run_vtime_us = first.report.vtime_us;
  result.total_vtime_us += first.report.vtime_us;
  result.divergences += first.divergences;
  collect_alerts(first.trace, alert_keys, result);
  record_bug_if_any(first.report, options_.initial_schedule, first.trace, 1,
                    result);
  if (observer) observer(first.trace, first.report, options_.initial_schedule);
  extend_stack(first.trace, /*flip_pos=*/-1, result);

  const bool stop_now =
      options_.stop_on_first_error && result.found_bug();
  while (!stop_now) {
    if (result.interleavings >= options_.max_interleavings) {
      result.interleaving_budget_exhausted =
          std::any_of(stack_.begin(), stack_.end(),
                      [](const Frame& f) { return !f.untried.empty(); });
      break;
    }
    if (elapsed() > options_.max_wall_seconds) {
      result.time_budget_exhausted = true;
      break;
    }

    // Deepest frame with an untried alternative.
    int flip = -1;
    for (int i = static_cast<int>(stack_.size()) - 1; i >= 0; --i) {
      if (!stack_[static_cast<std::size_t>(i)].untried.empty()) {
        flip = i;
        break;
      }
    }
    if (flip < 0) break;  // all epoch decisions exhausted

    stack_.resize(static_cast<std::size_t>(flip) + 1);
    Frame& frame = stack_[static_cast<std::size_t>(flip)];
    frame.taken_src = frame.untried.back();
    frame.untried.pop_back();
    DAMPI_TEVENT(obs::EventKind::kDecisionPop, obs::Phase::kInstant,
                 frame.key.rank,
                 static_cast<std::int32_t>(frame.key.nd_index),
                 frame.taken_src);

    const Schedule schedule = schedule_for(flip, frame.taken_src);
    if (pool.workers() > 0) speculate_frontier(pool, result);

    SingleRun outcome = pool.take(schedule, result.interleavings + 1);
    ++result.interleavings;
    result.total_vtime_us += outcome.report.vtime_us;
    result.divergences += outcome.divergences;
    collect_alerts(outcome.trace, alert_keys, result);
    record_bug_if_any(outcome.report, schedule, outcome.trace,
                      result.interleavings, result);
    if (observer) observer(outcome.trace, outcome.report, schedule);
    if (options_.stop_on_first_error && result.found_bug()) break;

    // Only completed runs contribute new decision points; a failed replay
    // is reported, not extended.
    if (outcome.report.completed) {
      extend_stack(outcome.trace, flip, result);
    }
  }

  pool.shutdown();
  result.pool = pool.stats();
  result.total_wall_seconds = elapsed();
  static obs::Counter& interleavings_metric =
      obs::Registry::instance().counter("explorer.interleavings");
  static obs::Counter& explorations_metric =
      obs::Registry::instance().counter("explorer.explorations");
  static obs::Counter& bugs_metric =
      obs::Registry::instance().counter("explorer.bugs");
  static obs::Counter& divergences_metric =
      obs::Registry::instance().counter("explorer.divergences");
  interleavings_metric.add(result.interleavings);
  explorations_metric.add(1);
  bugs_metric.add(result.bugs.size());
  divergences_metric.add(result.divergences);
  return result;
}

}  // namespace dampi::core
