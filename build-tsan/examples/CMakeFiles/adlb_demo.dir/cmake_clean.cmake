file(REMOVE_RECURSE
  "CMakeFiles/adlb_demo.dir/adlb_demo.cpp.o"
  "CMakeFiles/adlb_demo.dir/adlb_demo.cpp.o.d"
  "adlb_demo"
  "adlb_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlb_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
