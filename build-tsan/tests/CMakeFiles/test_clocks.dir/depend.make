# Empty dependencies file for test_clocks.
# This may be replaced when dependencies are built.
