#!/usr/bin/env bash
# Tier-1 gate: the full build + test sweep (once under the default
# thread-per-rank scheduler, once with DAMPI_SCHED=coop so every test
# also runs on the cooperative fiber scheduler, once with
# DAMPI_MATCH=linear so every test also runs on the linear matching
# oracle), a trace smoke test (a real workload exported with --trace
# must validate under trace_check), a DAMPI_TRACE=OFF configure+build
# check, a warn-only matcher perf smoke (bench_compare.py), then the
# concurrent explorer tests again under ThreadSanitizer
# (-DDAMPI_SANITIZE=thread; only the `concurrency`/`obs`/`match`
# labelled tests rerun there, so the TSan stage stays fast; coop fibers
# are unsupported under TSan and fall back to the thread scheduler,
# which is exactly the path TSan can check).
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "${jobs}"
(cd build && ctest --output-on-failure -j "${jobs}")

# The whole suite again under the cooperative scheduler: DAMPI_SCHED
# switches the default SchedOptions every engine picks up, so any test
# not pinning a scheduler reruns on coop fibers.
(cd build && DAMPI_SCHED=coop ctest --output-on-failure -j "${jobs}")
echo "tier1: coop-scheduler sweep OK"

# And again with the linear matcher: DAMPI_MATCH swaps the default
# matching structure, so every test not pinning one reruns on the
# O(queue) scan oracle. Any behavioural gap between the matchers shows
# up as a suite difference here.
(cd build && DAMPI_MATCH=linear ctest --output-on-failure -j "${jobs}")
echo "tier1: linear-matcher sweep OK"

# Trace smoke test: a parallel exploration traced end to end must export
# a valid Chrome trace with a lane per rank (4), per worker (3), and the
# explorer lane.
trace_out="build/tier1-trace.json"
build/examples/verify_cli --program matmult --procs 4 --jobs 4 \
  --max-interleavings 200 --trace "${trace_out}" > /dev/null
build/src/obs/trace_check "${trace_out}" --min-lanes 8
rm -f "${trace_out}"

# The tracer must also compile out cleanly.
cmake -B build-off -S . -DDAMPI_TRACE=OFF
cmake --build build-off -j "${jobs}" --target verify_cli trace_check
echo "tier1: DAMPI_TRACE=OFF build OK"

# Perf smoke: the indexed matcher (the default) must not lose to the
# linear oracle on the engine-path microbenchmarks. Warn-only — shared
# CI hosts are too noisy to gate on, but the table lands in the log.
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/bench_compare.py --warn-only
  echo "tier1: matcher perf smoke OK"
else
  echo "tier1: python3 unavailable, skipping matcher perf smoke"
fi

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "tier1: skipping ThreadSanitizer stage"
  exit 0
fi

cmake -B build-tsan -S . -DDAMPI_SANITIZE=thread
cmake --build build-tsan -j "${jobs}" \
  --target test_explorer_parallel test_obs test_match_index
(cd build-tsan && ctest --output-on-failure -L 'concurrency|obs|match' \
  -j "${jobs}")
echo "tier1: OK (including TSan concurrency + obs + match stage)"
