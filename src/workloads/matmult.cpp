#include "workloads/matmult.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/strutil.hpp"
#include "mpism/types.hpp"

namespace dampi::workloads {
namespace {

using mpism::Bytes;
using mpism::kAnySource;
using mpism::pack_vec;
using mpism::Proc;
using mpism::Status;
using mpism::unpack_vec;

constexpr mpism::Tag kWorkTag = 1;
constexpr mpism::Tag kResultTag = 2;
constexpr mpism::Tag kStopTag = 3;

std::vector<double> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(static_cast<std::size_t>(n) * n);
  for (double& v : m) v = rng.next_double() * 2.0 - 1.0;
  return m;
}

/// Work unit: [row_start, rows, a-row data...].
Bytes encode_chunk(int row_start, int rows, const std::vector<double>& a,
                   int n) {
  std::vector<double> payload;
  payload.reserve(2 + static_cast<std::size_t>(rows) * n);
  payload.push_back(row_start);
  payload.push_back(rows);
  payload.insert(payload.end(),
                 a.begin() + static_cast<std::ptrdiff_t>(row_start) * n,
                 a.begin() + static_cast<std::ptrdiff_t>(row_start + rows) * n);
  return pack_vec(payload);
}

void master(Proc& p, const MatmultConfig& config) {
  const int n = config.n;
  const int workers = p.size() - 1;
  const auto a = random_matrix(n, config.seed);
  auto b_data = random_matrix(n, config.seed + 1);

  Bytes b_bytes = pack_vec(b_data);
  p.bcast(&b_bytes, /*root=*/0);

  const int total_chunks = (n + config.chunk_rows - 1) / config.chunk_rows;
  int next_chunk = 0;
  auto chunk_bounds = [&](int chunk, int* row_start, int* rows) {
    *row_start = chunk * config.chunk_rows;
    *rows = std::min(config.chunk_rows, n - *row_start);
  };

  // Prime every worker with one chunk (idle workers get an early stop).
  int active_workers = 0;
  for (int w = 1; w <= workers; ++w) {
    if (next_chunk < total_chunks) {
      int row_start = 0, rows = 0;
      chunk_bounds(next_chunk++, &row_start, &rows);
      p.send(w, kWorkTag, encode_chunk(row_start, rows, a, n));
      ++active_workers;
    } else {
      p.send(w, kStopTag, {});
    }
  }

  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  int completed = 0;
  int cursor_row = 0;  // used only by the injected bug
  if (config.abstract_loop) p.pcontrol(1, "matmult-collect");
  while (completed < total_chunks) {
    Bytes result;
    const Status st = p.recv(kAnySource, kResultTag, &result);
    const auto payload = unpack_vec<double>(result);
    const int row_start = static_cast<int>(payload[0]);
    const int rows = static_cast<int>(payload[1]);
    // The injected bug assumes results come back in submission order and
    // writes to a running cursor; correct code uses the chunk's own row
    // index carried in the payload.
    const int dest_row = config.inject_order_bug ? cursor_row : row_start;
    cursor_row += rows;
    for (int i = 0; i < rows * n; ++i) {
      c[static_cast<std::size_t>(dest_row) * n + i] = payload[2 + i];
    }
    ++completed;
    if (next_chunk < total_chunks) {
      int rs = 0, rc = 0;
      chunk_bounds(next_chunk++, &rs, &rc);
      p.send(st.source, kWorkTag, encode_chunk(rs, rc, a, n));
    } else {
      p.send(st.source, kStopTag, {});
      --active_workers;
    }
  }
  if (config.abstract_loop) p.pcontrol(0, "matmult-collect");
  DAMPI_CHECK(active_workers == 0);

  // Verify against a serial product.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double expect = 0.0;
      for (int k = 0; k < n; ++k) {
        expect += a[static_cast<std::size_t>(i) * n + k] *
                  b_data[static_cast<std::size_t>(k) * n + j];
      }
      const double got = c[static_cast<std::size_t>(i) * n + j];
      if (std::abs(expect - got) > 1e-9) {
        p.fail(strfmt("matmult: C[%d][%d] wrong (got %f, want %f)", i, j,
                      got, expect));
      }
    }
  }
}

void worker(Proc& p, const MatmultConfig& config) {
  const int n = config.n;
  Bytes b_bytes;
  p.bcast(&b_bytes, /*root=*/0);
  const auto b = unpack_vec<double>(b_bytes);

  while (true) {
    Bytes chunk;
    const Status st = p.recv(0, mpism::kAnyTag, &chunk);
    if (st.tag == kStopTag) break;
    const auto payload = unpack_vec<double>(chunk);
    const int row_start = static_cast<int>(payload[0]);
    const int rows = static_cast<int>(payload[1]);

    std::vector<double> out;
    out.reserve(2 + static_cast<std::size_t>(rows) * n);
    out.push_back(row_start);
    out.push_back(rows);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < n; ++j) {
        double sum = 0.0;
        for (int k = 0; k < n; ++k) {
          sum += payload[2 + static_cast<std::size_t>(i) * n + k] *
                 b[static_cast<std::size_t>(k) * n + j];
        }
        out.push_back(sum);
      }
    }
    p.compute(config.flop_cost_us * rows * n * n);
    p.send(0, kResultTag, pack_vec(out));
  }
}

}  // namespace

void matmult(Proc& p, const MatmultConfig& config) {
  DAMPI_CHECK(p.size() >= 2);
  DAMPI_CHECK(config.n >= 1 && config.chunk_rows >= 1);
  if (p.rank() == 0) {
    master(p, config);
  } else {
    worker(p, config);
  }
}

}  // namespace dampi::workloads
