// Regression tests for concurrency bugs found and fixed during
// development. Each of these was originally a sub-1% flake, so every
// test hammers its scenario in a loop.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "isp/isp_verifier.hpp"
#include "support/reference_enumerator.hpp"
#include "support/run_helpers.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::pack;
using mpism::unpack;

// Regression: the deadlock detector once declared a deadlock when the
// last runner finished while another rank was satisfied but not yet
// woken (its request had completed but the thread had not re-acquired
// the lock). The fix re-evaluates every blocked rank's wake predicate at
// declaration time.
TEST(Regression, NoFalseDeadlockOnSatisfiedButUnwokenRank) {
  for (int i = 0; i < 300; ++i) {
    auto report = run_program(2, [](Proc& p) {
      const int other = 1 - p.rank();
      p.send(other, 1, pack<int>(p.rank()));
      Bytes data;
      p.recv(other, 1, &data);
      EXPECT_EQ(unpack<int>(data), other);
    });
    ASSERT_TRUE(report.ok()) << "iteration " << i << ": "
                             << report.deadlock_detail;
  }
}

// Regression: the telepathic transport once raced — a receiver could
// complete and look up the sender's clock before the sender's
// post-injection hook deposited it, silently losing the potential match
// (ISP then missed the wildcard-dependent deadlock ~1 run in 50). The
// fix blocks take() until the deposit.
TEST(Regression, TelepathicTransportNeverLosesClocks) {
  for (int i = 0; i < 120; ++i) {
    isp::IspOptions options;
    options.explorer.nprocs = 3;
    options.measure_native = false;
    isp::IspVerifier verifier(options);
    const auto result = verifier.verify(workloads::wildcard_dependent_deadlock);
    ASSERT_TRUE(result.deadlock_found) << "iteration " << i;
  }
}

// Regression: alternatives discovered for a prefix epoch in later runs
// were once dropped, so when the initial self-run happened to take the
// "other" outcome first, part of the reachable space became unreachable.
// The fix merges newly revealed prefix alternatives (unbounded mode).
TEST(Regression, PrefixAlternativesMergedAcrossRuns) {
  // fig4 under vector clocks must reach all three outcomes from *either*
  // initial outcome; repeat to cover both initial timings.
  for (int i = 0; i < 60; ++i) {
    core::ExplorerOptions options = explorer_options(4);
    options.clock_mode = core::ClockMode::kVector;
    std::set<OutcomeSignature> seen;
    core::Explorer explorer(options);
    explorer.explore(workloads::fig4_cross_coupled,
                     [&seen](const core::RunTrace& trace,
                             const mpism::RunReport& report,
                             const core::Schedule&) {
                       seen.insert(signature_of(trace, report));
                     });
    ASSERT_EQ(seen.size(), 3u) << "iteration " << i;
  }
}

// Regression: an unreceived competitor's piggyback never impinged, so
// fig3's bug escaped whenever the benign match came first. The
// finalize-time drain (barrier + probe/receive leftovers) feeds the
// analysis.
TEST(Regression, UnreceivedCompetitorAlwaysAnalyzed) {
  for (int i = 0; i < 120; ++i) {
    core::ExplorerOptions options = explorer_options(3);
    core::Explorer explorer(options);
    const auto result = explorer.explore(workloads::fig3_wildcard_bug);
    ASSERT_TRUE(result.found_bug()) << "iteration " << i;
  }
}

// Regression: Explorer.Fig4LamportIncompleteVectorComplete flaked ~2%:
// it asserted the Lamport explorer misses an outcome on fig4, but what
// the Lamport explorer reaches depends on which matching the initial
// *native* self-run happens to observe (TSan-clean OS-scheduling
// nondeterminism: unpinned, 200 explorations produce outcome sets of
// size 1, 2, *or* 3). When the scheduler delivered a rare ordering the
// late-message analysis saw every alternative and the "incomplete"
// assertion failed. ExplorerOptions::initial_schedule now pins the
// discovery run; from the pinned canonical root the Lamport exploration
// is bit-identical on every repetition and strictly incomplete, while
// vector clocks reach every outcome from the same root.
TEST(Regression, Fig4ExplorationDeterministicFromPinnedRoot) {
  core::ExplorerOptions vec_options = explorer_options(4);
  vec_options.clock_mode = core::ClockMode::kVector;
  ReferenceEnumerator oracle(vec_options, workloads::fig4_cross_coupled);
  const auto reachable = oracle.enumerate();
  ASSERT_EQ(reachable.size(), 3u);

  core::Schedule canonical_first_run;
  canonical_first_run.forced[core::EpochKey{1, 0}] = 0;
  canonical_first_run.forced[core::EpochKey{2, 0}] = 3;

  std::optional<std::set<OutcomeSignature>> lam_first;
  for (int i = 0; i < 60; ++i) {
    core::ExplorerOptions options = explorer_options(4);
    options.clock_mode = core::ClockMode::kLamport;
    options.initial_schedule = canonical_first_run;
    const auto explored =
        explored_outcomes(options, workloads::fig4_cross_coupled);
    // The formerly flaky assertion, now expected on every repetition.
    ASSERT_LT(explored.size(), reachable.size()) << "iteration " << i;
    if (!lam_first.has_value()) {
      lam_first = explored;
    } else {
      ASSERT_EQ(explored, *lam_first) << "iteration " << i;
    }
    core::ExplorerOptions vec_pinned = vec_options;
    vec_pinned.initial_schedule = canonical_first_run;
    ASSERT_EQ(explored_outcomes(vec_pinned, workloads::fig4_cross_coupled),
              reachable)
        << "iteration " << i;
  }
}

// Regression: a deterministic program must always be exactly one
// interleaving, whatever the thread timing (checks that raw tool traffic
// and the finalize barrier never masquerade as ND events).
TEST(Regression, DeterministicProgramsStayDeterministic) {
  for (int i = 0; i < 100; ++i) {
    core::ExplorerOptions options = explorer_options(4);
    core::Explorer explorer(options);
    const auto result = explorer.explore([](Proc& p) {
      const int next = (p.rank() + 1) % p.size();
      const int prev = (p.rank() + p.size() - 1) % p.size();
      mpism::RequestId r = p.irecv(prev, 1);
      p.send(next, 1, pack<int>(p.rank()));
      p.wait(r);
      p.barrier();
    });
    ASSERT_EQ(result.interleavings, 1u) << "iteration " << i;
    ASSERT_FALSE(result.found_bug());
  }
}

}  // namespace
}  // namespace dampi::test
