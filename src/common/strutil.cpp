#include "common/strutil.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace dampi {

std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string escape_line(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_line(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        out += text[i];
    }
  }
  return out;
}

}  // namespace dampi
