#!/usr/bin/env python3
"""Perf smoke for the matching index: indexed must not lose to linear.

Runs `bench_micro` twice — DAMPI_MATCH=linear, then DAMPI_MATCH=indexed —
over the engine-path benchmarks the matcher sits on, and compares
per-benchmark real_time. The indexed matcher is the default, so a run
where it is meaningfully slower than the linear oracle is a regression
worth failing on.

With --distributed PATH it instead reads the BENCH_distributed.json that
bench_distributed emits and checks the campaign-equivalence contract:
every worker count must report identical interleavings, exit code, and
verdict. Speedup is reported but never failed on — a 1-core host has a
legitimately flat curve (the JSON records nproc for exactly this reason).

With --contention PATH it reads the BENCH_contention.json that
bench_contention emits and compares the sharded engine lock against the
global-mutex baseline per rank count. On a single-hardware-thread host
the comparison is report-only (no parallelism to unlock — a flat or
slightly worse curve is the honest result); on multi-core, sharded
losing to global beyond the tolerance is flagged as a regression.

With --por PATH it reads the BENCH_por.json that bench_por emits and
checks the sleep-set pruning contract: every row must be marked
equivalent (same bug set and per-epoch outcome sets as --por off) and
never explore more interleavings than off. The reduction ratio is
reported per row; all-dependent workloads legitimately sit at 1.0x.

With --sweep PATH it reads the BENCH_sweep.json that bench_sweep emits
and checks the fault-sweep determinism contract: every worker count must
complete the same number of plans with the same exit code (the bench
itself already fails on report byte-divergence; this re-checks the
summary numbers from the JSON). Plans/sec is reported but never failed
on — scaling is conditional on cores.

Usage:
  scripts/bench_compare.py [--bench PATH] [--tolerance FRAC] [--warn-only]
  scripts/bench_compare.py --distributed BENCH_distributed.json [--warn-only]
  scripts/bench_compare.py --contention BENCH_contention.json [--warn-only]
  scripts/bench_compare.py --por BENCH_por.json [--warn-only]
  scripts/bench_compare.py --sweep BENCH_sweep.json [--warn-only]

Exit codes: 0 ok (or --warn-only), 1 regression, 2 cannot run bench.
"""

import argparse
import json
import os
import subprocess
import sys

# Engine-path benchmarks: deep-queue wildcard matching is where the index
# must win; ping-pong is the shallow-queue path where it must at least
# not lose (within tolerance — it does constant hash work per message).
FILTER = "BM_WildcardMatchDepth|BM_RuntimePingPong"


def run_bench(bench, match_kind):
    env = dict(os.environ, DAMPI_MATCH=match_kind)
    cmd = [
        bench,
        f"--benchmark_filter={FILTER}",
        "--benchmark_format=json",
    ]
    try:
        out = subprocess.run(
            cmd, env=env, capture_output=True, text=True, check=True
        ).stdout
    except (OSError, subprocess.CalledProcessError) as err:
        print(f"bench_compare: cannot run {bench} ({err})", file=sys.stderr)
        sys.exit(2)
    results = {}
    for entry in json.loads(out).get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        results[entry["name"]] = float(entry["real_time"])
    return results


def check_distributed(path, warn_only):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path} ({err})", file=sys.stderr)
        sys.exit(2)

    rows = data.get("rows", [])
    if len(rows) < 2:
        print("bench_compare: need at least two worker counts", file=sys.stderr)
        sys.exit(2)

    nproc = data.get("nproc", 0)
    base = rows[0]
    print(f"{'workers':>8} {'wall_s':>10} {'interleavings':>14} "
          f"{'speedup':>8}  verdict  (host cores: {nproc})")
    divergent = []
    for row in rows:
        same = (row["interleavings"] == base["interleavings"]
                and row["exit"] == base["exit"]
                and row.get("verdict") == base.get("verdict"))
        if not same:
            divergent.append(row["workers"])
        print(f"{row['workers']:>8} {row['wall_s']:>10.3f} "
              f"{row['interleavings']:>14} {row['speedup']:>7.2f}x  "
              f"{row.get('verdict', '?')}"
              f"{'' if same else '  <-- DIVERGENT'}")

    if divergent:
        print(f"bench_compare: campaign result diverges at worker counts "
              f"{divergent} — sharding changed the verdict", file=sys.stderr)
        if not warn_only:
            sys.exit(1)
        print("bench_compare: --warn-only set, not failing", file=sys.stderr)
    else:
        print("bench_compare: campaign result invariant across worker counts")
        if nproc <= 1:
            print("bench_compare: 1-core host — flat scaling curve expected")


def check_contention(path, tolerance, warn_only):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path} ({err})", file=sys.stderr)
        sys.exit(2)

    cells = data.get("cells", [])
    by_scale = {}
    for cell in cells:
        by_scale.setdefault(cell["nprocs"], {})[cell["lock"]] = cell
    scales = sorted(n for n, pair in by_scale.items()
                    if "global" in pair and "sharded" in pair)
    if not scales:
        print("bench_compare: no comparable global/sharded cell pairs",
              file=sys.stderr)
        sys.exit(2)

    hw = data.get("hw_threads", 0)
    print(f"{'ranks':>6} {'global r/s':>12} {'sharded r/s':>12} "
          f"{'speedup':>8} {'contended %':>12}  (hw threads: {hw})")
    regressions = []
    for n in scales:
        g = by_scale[n]["global"]
        s = by_scale[n]["sharded"]
        speedup = s["runs_per_sec"] / g["runs_per_sec"]
        contended_pct = (100.0 * s["lock_contended"] / s["lock_acquired"]
                         if s["lock_acquired"] else 0.0)
        flag = ""
        if hw > 1 and speedup < 1.0 - tolerance:
            regressions.append((n, speedup))
            flag = "  <-- REGRESSION"
        print(f"{n:>6} {g['runs_per_sec']:>12.1f} {s['runs_per_sec']:>12.1f} "
              f"{speedup:>7.2f}x {contended_pct:>11.1f}%{flag}")

    if hw <= 1:
        print("bench_compare: 1-hw-thread host — report-only, a flat "
              "curve is expected")
    if regressions:
        print(f"bench_compare: sharded lock slower than the global baseline "
              f"at rank counts {[n for n, _ in regressions]} "
              f"(tolerance {tolerance:.0%})", file=sys.stderr)
        if not warn_only:
            sys.exit(1)
        print("bench_compare: --warn-only set, not failing", file=sys.stderr)
    elif hw > 1:
        print("bench_compare: sharded lock holds up at every rank count")


def check_por(path, warn_only):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path} ({err})", file=sys.stderr)
        sys.exit(2)

    rows = data.get("rows", [])
    if not rows:
        print("bench_compare: no POR rows", file=sys.stderr)
        sys.exit(2)

    print(f"{'workload':<20} {'off_runs':>10} {'sleep_runs':>12} "
          f"{'pruned':>8} {'ratio':>7}  check")
    bad = []
    for row in rows:
        ratio = (row["off_runs"] / row["sleep_runs"]
                 if row["sleep_runs"] else 0.0)
        ok = row.get("equivalent") and row["sleep_runs"] <= row["off_runs"]
        if not ok:
            bad.append(row["workload"])
        print(f"{row['workload']:<20} {row['off_runs']:>10} "
              f"{row['sleep_runs']:>12} {row['pruned']:>8} {ratio:>6.2f}x"
              f"{'  ok' if ok else '  <-- DIVERGENT'}")

    if bad:
        print(f"bench_compare: --por sleep diverged from off on {bad} — "
              f"pruning dropped coverage", file=sys.stderr)
        if not warn_only:
            sys.exit(1)
        print("bench_compare: --warn-only set, not failing", file=sys.stderr)
    else:
        best = data.get("best_ratio", 0.0)
        print(f"bench_compare: pruning sound on every workload "
              f"(best reduction {best:.2f}x)")


def check_sweep(path, warn_only):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_compare: cannot read {path} ({err})", file=sys.stderr)
        sys.exit(2)

    rows = data.get("rows", [])
    if len(rows) < 2:
        print("bench_compare: need at least two sweep worker counts",
              file=sys.stderr)
        sys.exit(2)

    nproc = data.get("nproc", 0)
    base = rows[0]
    print(f"{'workers':>8} {'wall_s':>10} {'plans':>7} {'plans/s':>10} "
          f"{'speedup':>8}  (host cores: {nproc})")
    divergent = []
    for row in rows:
        same = (row["plans"] == base["plans"]
                and row["exit"] == base["exit"])
        if not same:
            divergent.append(row["workers"])
        print(f"{row['workers']:>8} {row['wall_s']:>10.3f} "
              f"{row['plans']:>7} {row['plans_per_s']:>10.1f} "
              f"{row['speedup']:>7.2f}x"
              f"{'' if same else '  <-- DIVERGENT'}")

    if divergent:
        print(f"bench_compare: sweep result diverges at worker counts "
              f"{divergent} — parallelism changed the crash-tolerance "
              f"report", file=sys.stderr)
        if not warn_only:
            sys.exit(1)
        print("bench_compare: --warn-only set, not failing", file=sys.stderr)
    else:
        print("bench_compare: sweep result invariant across worker counts")
        if nproc <= 1:
            print("bench_compare: 1-core host — flat scaling curve expected")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--distributed",
        metavar="JSON",
        help="check a BENCH_distributed.json instead of the matcher bench",
    )
    parser.add_argument(
        "--contention",
        metavar="JSON",
        help="check a BENCH_contention.json instead of the matcher bench",
    )
    parser.add_argument(
        "--por",
        metavar="JSON",
        help="check a BENCH_por.json instead of the matcher bench",
    )
    parser.add_argument(
        "--sweep",
        metavar="JSON",
        help="check a BENCH_sweep.json instead of the matcher bench",
    )
    parser.add_argument(
        "--bench",
        default="build/bench/bench_micro",
        help="path to the bench_micro binary",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed indexed/linear slowdown fraction (default 0.15)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI smoke mode)",
    )
    args = parser.parse_args()

    if args.distributed:
        check_distributed(args.distributed, args.warn_only)
        return

    if args.contention:
        check_contention(args.contention, args.tolerance, args.warn_only)
        return

    if args.por:
        check_por(args.por, args.warn_only)
        return

    if args.sweep:
        check_sweep(args.sweep, args.warn_only)
        return

    if not os.path.exists(args.bench):
        print(f"bench_compare: {args.bench} not built", file=sys.stderr)
        sys.exit(2)

    linear = run_bench(args.bench, "linear")
    indexed = run_bench(args.bench, "indexed")
    names = sorted(set(linear) & set(indexed))
    if not names:
        print("bench_compare: no comparable benchmarks ran", file=sys.stderr)
        sys.exit(2)

    regressions = []
    print(f"{'benchmark':<40} {'linear':>12} {'indexed':>12} {'ratio':>7}")
    for name in names:
        ratio = indexed[name] / linear[name]
        flag = ""
        if ratio > 1.0 + args.tolerance:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        print(
            f"{name:<40} {linear[name]:>10.0f}ns {indexed[name]:>10.0f}ns "
            f"{ratio:>6.2f}x{flag}"
        )

    if regressions:
        print(
            f"bench_compare: indexed matcher slower than linear on "
            f"{len(regressions)} benchmark(s) "
            f"(tolerance {args.tolerance:.0%}):",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        if not args.warn_only:
            sys.exit(1)
        print("bench_compare: --warn-only set, not failing", file=sys.stderr)
    else:
        print("bench_compare: indexed matcher holds up on every benchmark")


if __name__ == "__main__":
    main()
