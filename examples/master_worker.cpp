// Master/worker verification with bounded mixing.
//
// A master distributes matrix rows to workers and collects results with
// wildcard receives (the paper's matmult). This example demonstrates:
//   1. an injected order-sensitivity bug that only an alternate match
//      order exposes — native runs pass, DAMPI replay fails it;
//   2. bounded mixing (§III-B2): k=0,1,2 explore exponentially less than
//      the full space while still finding the bug at k>=1;
//   3. loop-iteration abstraction (§III-B1) collapsing the space.
//
//   $ ./examples/master_worker
#include <cstdio>
#include <optional>

#include "core/explorer.hpp"
#include "workloads/matmult.hpp"

using namespace dampi;

namespace {

core::ExploreResult explore(const workloads::MatmultConfig& config,
                            std::optional<int> k, int procs) {
  core::ExplorerOptions options;
  options.nprocs = procs;
  options.mixing_bound = k;
  options.max_interleavings = 5000;
  core::Explorer explorer(options);
  return explorer.explore(
      [config](mpism::Proc& p) { workloads::matmult(p, config); });
}

const char* k_name(std::optional<int> k) {
  static char buf[16];
  if (!k.has_value()) return "unbounded";
  std::snprintf(buf, sizeof buf, "k=%d", *k);
  return buf;
}

}  // namespace

int main() {
  constexpr int kProcs = 4;  // one master + three workers

  std::printf("-- correct master/worker --------------------------------\n");
  workloads::MatmultConfig good;
  good.n = 6;
  good.chunk_rows = 1;
  for (std::optional<int> k :
       {std::optional<int>(0), std::optional<int>(1), std::optional<int>(2),
        std::optional<int>()}) {
    const auto result = explore(good, k, kProcs);
    std::printf("  %-9s : %5llu interleavings, bug=%s\n", k_name(k),
                static_cast<unsigned long long>(result.interleavings),
                result.found_bug() ? "YES" : "no");
  }

  std::printf("\n-- with the order-sensitivity bug injected --------------\n");
  workloads::MatmultConfig bad = good;
  bad.inject_order_bug = true;
  for (std::optional<int> k : {std::optional<int>(0), std::optional<int>(1)}) {
    const auto result = explore(bad, k, kProcs);
    std::printf("  %-9s : %5llu interleavings, bug=%s\n", k_name(k),
                static_cast<unsigned long long>(result.interleavings),
                result.found_bug() ? "YES (out-of-order completion corrupts C)"
                                   : "no");
  }

  std::printf("\n-- loop abstraction (MPI_Pcontrol around the collect "
              "loop) --\n");
  workloads::MatmultConfig abstracted = good;
  abstracted.abstract_loop = true;
  const auto collapsed = explore(abstracted, std::nullopt, kProcs);
  std::printf("  abstracted: %5llu interleaving(s) — the entire loop keeps "
              "its self-run matches\n",
              static_cast<unsigned long long>(collapsed.interleavings));
  return 0;
}
