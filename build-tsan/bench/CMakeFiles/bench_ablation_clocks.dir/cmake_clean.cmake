file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clocks.dir/bench_ablation_clocks.cpp.o"
  "CMakeFiles/bench_ablation_clocks.dir/bench_ablation_clocks.cpp.o.d"
  "bench_ablation_clocks"
  "bench_ablation_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
