file(REMOVE_RECURSE
  "CMakeFiles/test_decision_io.dir/test_decision_io.cpp.o"
  "CMakeFiles/test_decision_io.dir/test_decision_io.cpp.o.d"
  "test_decision_io"
  "test_decision_io.pdb"
  "test_decision_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decision_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
