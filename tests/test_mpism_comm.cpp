// Communicator management: dup, split, free, rank translation, leak
// accounting (the substrate behind Table II's C-Leak column).
#include <gtest/gtest.h>

#include "support/run_helpers.hpp"

namespace dampi::test {
namespace {

using mpism::Bytes;
using mpism::CommId;
using mpism::kCommNull;
using mpism::kCommWorld;
using mpism::pack;
using mpism::ReduceOp;
using mpism::unpack;

TEST(Comm, WorldHasAllRanks) {
  auto report = run_program(4, [](Proc& p) {
    EXPECT_EQ(p.comm_size(kCommWorld), 4);
    EXPECT_EQ(p.comm_rank(kCommWorld), p.rank());
  });
  EXPECT_TRUE(report.ok());
}

TEST(Comm, DupPreservesGroupAndIsolatesTraffic) {
  auto report = run_program(2, [](Proc& p) {
    CommId dup = p.comm_dup();
    EXPECT_NE(dup, kCommWorld);
    EXPECT_EQ(p.comm_size(dup), 2);
    EXPECT_EQ(p.comm_rank(dup), p.rank());
    if (p.rank() == 0) {
      // Same tag on two communicators: streams do not cross.
      p.send(1, 5, pack<int>(1), kCommWorld);
      p.send(1, 5, pack<int>(2), dup);
    } else {
      Bytes on_dup, on_world;
      p.recv(0, 5, &on_dup, dup);
      p.recv(0, 5, &on_world, kCommWorld);
      EXPECT_EQ(unpack<int>(on_dup), 2);
      EXPECT_EQ(unpack<int>(on_world), 1);
    }
    p.comm_free(dup);
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.comm_leaks, 0);
}

TEST(Comm, SplitGroupsByColor) {
  auto report = run_program(6, [](Proc& p) {
    const int color = p.rank() % 2;
    CommId sub = p.comm_split(color, p.rank());
    EXPECT_NE(sub, kCommNull);
    EXPECT_EQ(p.comm_size(sub), 3);
    EXPECT_EQ(p.comm_rank(sub), p.rank() / 2);  // key order = rank order
    // Communicate within the split group.
    const std::uint64_t sum = p.allreduce_u64(
        static_cast<std::uint64_t>(p.rank()), ReduceOp::kSumU64, sub);
    EXPECT_EQ(sum, color == 0 ? 6u : 9u);  // 0+2+4 vs 1+3+5
    p.comm_free(sub);
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.comm_leaks, 0);
}

TEST(Comm, SplitKeyControlsOrdering) {
  auto report = run_program(3, [](Proc& p) {
    // Reverse the order with descending keys.
    CommId sub = p.comm_split(0, -p.rank());
    EXPECT_EQ(p.comm_rank(sub), 2 - p.rank());
    p.comm_free(sub);
  });
  EXPECT_TRUE(report.ok());
}

TEST(Comm, SplitUndefinedColorGetsNull) {
  auto report = run_program(4, [](Proc& p) {
    const int color = p.rank() == 0 ? -1 : 1;
    CommId sub = p.comm_split(color, 0);
    if (p.rank() == 0) {
      EXPECT_EQ(sub, kCommNull);
    } else {
      EXPECT_EQ(p.comm_size(sub), 3);
      p.comm_free(sub);
    }
  });
  EXPECT_TRUE(report.ok());
}

TEST(Comm, UnfreedCommsAreLeaks) {
  auto report = run_program(2, [](Proc& p) {
    p.comm_dup();                 // leaked
    CommId ok = p.comm_dup();     // freed
    p.comm_free(ok);
    p.comm_split(0, p.rank());    // leaked
  });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.comm_leaks, 2);
}

TEST(Comm, FreeingWorldIsAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    if (p.rank() == 0) p.comm_free(kCommWorld);
  });
  EXPECT_FALSE(report.ok());
}

TEST(Comm, UsingFreedCommIsAProgramError) {
  auto report = run_program(2, [](Proc& p) {
    CommId dup = p.comm_dup();
    p.barrier();
    p.comm_free(dup);
    if (p.rank() == 0) p.send(1, 1, pack<int>(1), dup);
  });
  EXPECT_FALSE(report.ok());
}

TEST(Comm, NonMemberCannotUseSplitComm) {
  auto report = run_program(4, [](Proc& p) {
    CommId sub = p.comm_split(p.rank() < 2 ? 0 : 1, 0);
    if (p.rank() == 0) {
      // Rank 2's comm id differs; using rank 0's own sub comm to address
      // rank 2 (index out of range) is the representative misuse.
      p.send(1, 1, pack<int>(1), sub);
      p.recv(1, 2, nullptr, sub);
    } else if (p.rank() == 1) {
      p.recv(0, 1, nullptr, sub);
      p.send(0, 2, pack<int>(1), sub);
    }
    p.comm_free(sub);
  });
  EXPECT_TRUE(report.ok());
}

TEST(Comm, WildcardRecvScopedToCommunicator) {
  auto report = run_program(4, [](Proc& p) {
    // Ranks 0,1 in one group; 2,3 in another. A wildcard receive on the
    // subgroup must not see world traffic.
    CommId sub = p.comm_split(p.rank() / 2, p.rank());
    if (p.rank() == 0) {
      p.send(1, 7, pack<int>(11), kCommWorld);  // world message first
      p.send(1, 7, pack<int>(22), sub);
    } else if (p.rank() == 1) {
      p.barrier();
      Bytes data;
      mpism::Status st = p.recv(mpism::kAnySource, 7, &data, sub);
      EXPECT_EQ(unpack<int>(data), 22);
      EXPECT_EQ(st.source, 0);
      p.recv(0, 7, &data, kCommWorld);
      EXPECT_EQ(unpack<int>(data), 11);
    }
    if (p.rank() != 1) p.barrier();
    p.comm_free(sub);
  });
  EXPECT_TRUE(report.ok());
}

// Nested splits: split a split communicator.
TEST(Comm, NestedSplit) {
  auto report = run_program(8, [](Proc& p) {
    CommId half = p.comm_split(p.rank() / 4, p.rank());
    EXPECT_EQ(p.comm_size(half), 4);
    CommId quarter = p.comm_split(p.comm_rank(half) / 2, 0, half);
    EXPECT_EQ(p.comm_size(quarter), 2);
    const std::uint64_t sum = p.allreduce_u64(1, ReduceOp::kSumU64, quarter);
    EXPECT_EQ(sum, 2u);
    p.comm_free(quarter);
    p.comm_free(half);
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.comm_leaks, 0);
}

}  // namespace
}  // namespace dampi::test
