// Wildcard match policies: how the *runtime* resolves MPI_ANY_SOURCE when
// several sources could match (the paper's SELF_RUN behaviour, i.e. "let
// the MPI runtime determine the first matching send").
//
// The verifier never steers the runtime through a policy — guided replays
// rewrite ANY_SOURCE to a concrete source in the tool layer, exactly as
// DAMPI determinizes receives. Policies exist so that (a) self-runs are
// reproducible (seeded), and (b) tests can bias the runtime towards
// different native outcomes, modelling the paper's observation that a
// given MPI implementation biases execution towards the same outcomes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

/// One matchable candidate for a wildcard receive/probe: the head (lowest
/// unmatched seq) message from one source.
struct MatchCandidate {
  Rank src_world = -1;
  Tag tag = kAnyTag;
  std::uint64_t seq = 0;
  std::uint64_t msg_id = 0;
};

/// Strategy interface. choose() is called with a non-empty candidate list
/// (one entry per eligible source, ordered by source rank) and returns the
/// index of the winner.
class MatchPolicy {
 public:
  virtual ~MatchPolicy() = default;
  virtual std::size_t choose(const std::vector<MatchCandidate>& c) = 0;
};

/// Deterministically picks the lowest source rank — models an MPI library
/// that always scans its queues in the same order (the bias the paper
/// says masks errors).
class LowestSourcePolicy final : public MatchPolicy {
 public:
  std::size_t choose(const std::vector<MatchCandidate>& c) override;
};

/// Picks the earliest-arrived message (lowest msg_id), a FIFO runtime.
class FifoArrivalPolicy final : public MatchPolicy {
 public:
  std::size_t choose(const std::vector<MatchCandidate>& c) override;
};

/// Seeded uniform choice; reproducible per seed.
class SeededRandomPolicy final : public MatchPolicy {
 public:
  explicit SeededRandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::size_t choose(const std::vector<MatchCandidate>& c) override;

 private:
  Rng rng_;
};

enum class PolicyKind { kLowestSource, kFifoArrival, kSeededRandom };

std::unique_ptr<MatchPolicy> make_policy(PolicyKind kind, std::uint64_t seed);

}  // namespace dampi::mpism
