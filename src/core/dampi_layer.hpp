// DampiLayer: the paper's Algorithm 1 as a PnMPI-style tool layer.
//
// Per rank it maintains the logical clock, records an epoch for every
// non-deterministic event (wildcard receive, flagged wildcard probe),
// classifies each completed incoming message as late/not-late against its
// open epochs to accumulate potential matches, transmits clocks through a
// piggyback transport, enforces epoch decisions in guided replays by
// rewriting MPI_ANY_SOURCE to the forced source, honors loop-abstraction
// regions, and runs the §V unsafe-pattern monitor.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/clock_state.hpp"
#include "core/decision.hpp"
#include "core/epoch.hpp"
#include "core/options.hpp"
#include "mpism/tool.hpp"
#include "piggyback/transport.hpp"

namespace dampi::core {

/// State shared by all ranks of one run.
struct DampiShared {
  ExplorerOptions options;  ///< run configuration (owned copy)
  Schedule schedule;
  std::shared_ptr<TraceSink> sink;
  /// Highest decided nd_index per rank (guided frontier); -1 = none.
  std::vector<std::int64_t> max_decided_index;
  /// Replay divergence: an epoch inside the guided frontier had no
  /// decision (the ND event sequence shifted, e.g. a timing-dependent
  /// iprobe loop). Counted, not fatal — the run degrades to self-run.
  std::atomic<std::uint64_t> divergences{0};

  DampiShared(ExplorerOptions opts, Schedule sched,
              std::shared_ptr<TraceSink> trace_sink);
};

class DampiLayer final : public mpism::ToolLayer {
 public:
  DampiLayer(int rank, int nprocs, std::shared_ptr<DampiShared> shared,
             std::unique_ptr<piggyback::Transport> transport);
  ~DampiLayer() override;

  void on_init(mpism::ToolCtx& ctx) override;
  void on_finalize(mpism::ToolCtx& ctx) override;

  void pre_isend(mpism::ToolCtx& ctx, mpism::SendCall& call) override;
  void post_isend(mpism::ToolCtx& ctx, const mpism::SendCall& call,
                  mpism::RequestId id, const mpism::SendInfo& info) override;

  void pre_irecv(mpism::ToolCtx& ctx, mpism::RecvCall& call) override;
  void post_irecv(mpism::ToolCtx& ctx, const mpism::RecvCall& call,
                  mpism::RequestId id) override;

  void post_wait(mpism::ToolCtx& ctx, mpism::ReqCompletion& c) override;

  void pre_probe(mpism::ToolCtx& ctx, mpism::ProbeCall& call) override;
  void post_probe(mpism::ToolCtx& ctx, const mpism::ProbeCall& call,
                  bool flag, mpism::Status& status) override;

  void pre_collective(mpism::ToolCtx& ctx, mpism::CollCall& call) override;
  void post_collective(mpism::ToolCtx& ctx, const mpism::CollCall& call,
                       const mpism::CollResult& result) override;

  void on_pcontrol(mpism::ToolCtx& ctx, int level,
                   const std::string& what) override;

 private:
  /// Guided-mode lookup for the ND event about to happen (at the current
  /// nd_index); returns the forced source world rank or kAnySource.
  mpism::Rank guided_source();

  /// Record a new epoch for the ND event that just committed.
  EpochRecord& record_epoch(mpism::CommId comm, mpism::Tag tag,
                            bool is_probe);

  /// The paper's FindPotentialMatches: classify a completed incoming
  /// message against this rank's open epochs (newest first, early exit
  /// once the message is causally after an epoch).
  void find_potential_matches(mpism::ToolCtx& ctx, mpism::Rank src_world,
                              std::uint64_t seq, mpism::Tag tag,
                              mpism::CommId comm,
                              const mpism::Bytes& msg_clock);

  void unsafe_check(mpism::ToolCtx& ctx, const char* op);

  /// The clock outgoing traffic advertises (== clock_ unless deferred
  /// sync is enabled).
  ClockState& transmit_clock() {
    return options_.deferred_clock_sync ? xmit_clock_ : clock_;
  }
  /// Apply an incoming remote clock to both trackers.
  void merge_incoming(const mpism::Bytes& remote) {
    clock_.merge(remote);
    if (options_.deferred_clock_sync) xmit_clock_.merge(remote);
  }

  void flush(bool from_finalize);

  int rank_;
  int nprocs_;
  std::shared_ptr<DampiShared> shared_;
  const ExplorerOptions& options_;  ///< shared_->options
  std::unique_ptr<piggyback::Transport> transport_;

  ClockState clock_;
  /// §V deferred-sync transmittal clock: what outgoing traffic carries
  /// when options_.deferred_clock_sync is on. Lags clock_ by the ticks
  /// of wildcard epochs whose Wait/Test has not completed; catches up
  /// per epoch at completion.
  ClockState xmit_clock_;
  std::uint64_t nd_index_ = 0;

  /// Epochs recorded by this rank this run (flushed at finalize/teardown).
  std::vector<EpochRecord> epochs_;
  std::vector<UnsafeAlert> alerts_;
  std::uint64_t recv_epoch_count_ = 0;
  std::uint64_t probe_epoch_count_ = 0;
  std::uint64_t potential_count_ = 0;
  std::uint64_t late_count_ = 0;
  bool flushed_ = false;

  /// Wildcard receive request -> index into epochs_.
  std::unordered_map<mpism::RequestId, std::size_t> wildcard_reqs_;
  /// Pending wildcard receives whose Wait/Test has not completed — the
  /// §V monitor's watch set.
  std::set<mpism::RequestId> pending_wildcards_;

  /// One-slot latches carrying pre-hook context into the matching post
  /// hook (hooks on a rank are strictly sequential).
  bool latch_irecv_was_wildcard_ = false;
  bool latch_probe_was_wildcard_ = false;
  mpism::Bytes latch_send_clock_;

  /// MPI_Pcontrol loop-abstraction nesting depth.
  int region_depth_ = 0;

  /// Automatic loop detection (§VI future work): signature of the last
  /// epoch and the length of the current identical-signature streak.
  struct EpochSignature {
    mpism::CommId comm = mpism::kCommNull;
    mpism::Tag tag = mpism::kAnyTag;
    bool is_probe = false;
    friend bool operator==(const EpochSignature&,
                           const EpochSignature&) = default;
  };
  EpochSignature last_signature_;
  int signature_streak_ = 0;

  /// Live user communicators this rank belongs to — the finalize-time
  /// drain walks them to analyze messages that were sent but never
  /// received (their piggybacks would otherwise never impinge; the
  /// paper's Fig. 3 relies on the unreceived competitor being analyzed).
  std::vector<mpism::CommId> known_comms_{mpism::kCommWorld};

  void drain_unreceived(mpism::ToolCtx& ctx);
};

/// Build the ToolSetup for one DAMPI-instrumented run. `shared` carries
/// the run configuration (shared->options), the schedule, and the sink.
mpism::ToolSetup make_dampi_setup(
    std::shared_ptr<DampiShared> shared,
    std::shared_ptr<piggyback::TelepathicBoard> board);

}  // namespace dampi::core
