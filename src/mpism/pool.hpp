// Slab / freelist pools for the engine's per-message allocations.
//
// The matching hot path creates and destroys one RequestRecord per
// nonblocking operation and one queue node per unexpected message; at
// ADLB-style unexpected-queue depths that is a heap round trip per MPI
// call. SlabPool turns both into freelist pops after warm-up: objects
// are placement-constructed in cache-dense slabs and recycled without
// returning memory to the allocator until the pool dies. BufferPool
// does the same for payload byte buffers whose contents die inside the
// engine (unextracted receives) — capacity is retained and handed back
// to the next engine-internal copy.
//
// Thread safety: none. Pools are per-rank in the engine and guarded by
// that rank's lock shard (or the global engine mutex in --engine-lock
// global mode), exactly like the structures they feed. Stats are plain
// integers for the same reason; the engine aggregates them across ranks
// and publishes to the obs::Registry (`engine.pool.*`) once per run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "mpism/types.hpp"

namespace dampi::mpism {

/// Allocation/reuse counters published as `engine.pool.*` metrics.
struct PoolStats {
  std::uint64_t acquired = 0;  ///< total acquire() calls
  std::uint64_t reused = 0;    ///< acquires served from the freelist
  std::uint64_t slabs = 0;     ///< slab allocations (the only mallocs)
  std::uint64_t live = 0;      ///< objects currently checked out
};

/// Fixed-type object pool: acquire() placement-constructs into a slab
/// slot (freelist first), release() destroys and recycles the slot.
/// Slabs are only freed on destruction, so steady-state acquire/release
/// cycles perform no allocation at all.
template <typename T>
class SlabPool {
 public:
  explicit SlabPool(std::size_t objects_per_slab = 64)
      : per_slab_(objects_per_slab == 0 ? 1 : objects_per_slab) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Owners must release everything they acquired before the pool dies
  // (the engine tears its tables down before the pools; `live` in the
  // published stats is the audit trail). Destroying with live objects
  // skips their destructors — never throw from here.
  ~SlabPool() = default;

  template <typename... Args>
  T* acquire(Args&&... args) {
    ++stats_.acquired;
    ++stats_.live;
    Slot* slot = free_;
    if (slot != nullptr) {
      free_ = slot->next;
      ++stats_.reused;
    } else {
      if (next_in_slab_ == per_slab_ || slabs_.empty()) {
        slabs_.push_back(std::make_unique<Slot[]>(per_slab_));
        next_in_slab_ = 0;
        ++stats_.slabs;
      }
      slot = &slabs_.back()[next_in_slab_++];
    }
    return ::new (static_cast<void*>(slot->storage))
        T(std::forward<Args>(args)...);
  }

  void release(T* obj) {
    obj->~T();
    auto* slot = std::launder(reinterpret_cast<Slot*>(obj));
    slot->next = free_;
    free_ = slot;
    DAMPI_CHECK(stats_.live > 0);
    --stats_.live;
  }

  const PoolStats& stats() const { return stats_; }

 private:
  union Slot {
    Slot() {}
    ~Slot() {}
    Slot* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  std::size_t per_slab_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::size_t next_in_slab_ = 0;
  Slot* free_ = nullptr;
  PoolStats stats_;
};

/// Deleter returning the object to its SlabPool; with it, pooled objects
/// flow through the same unique_ptr-shaped ownership the engine used for
/// heap-allocated records (extract-during-hooks stays exception safe).
template <typename T>
class PoolDeleter {
 public:
  PoolDeleter() = default;
  explicit PoolDeleter(SlabPool<T>* pool) : pool_(pool) {}
  void operator()(T* obj) const {
    DAMPI_CHECK(pool_ != nullptr);
    pool_->release(obj);
  }

 private:
  SlabPool<T>* pool_ = nullptr;
};

template <typename T>
using PoolPtr = std::unique_ptr<T, PoolDeleter<T>>;

/// Freelist of payload buffers. recycle() keeps a dropped buffer's
/// capacity; acquire() hands it back cleared, so repeated
/// engine-internal copies (collective fan-out, reduce scratch) stop
/// allocating once the high-water capacity is reached.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers = 256,
                      std::size_t max_buffer_bytes = 1 << 20)
      : max_buffers_(max_buffers), max_buffer_bytes_(max_buffer_bytes) {}

  /// An empty buffer, reusing recycled capacity when available.
  Bytes acquire() {
    ++stats_.acquired;
    if (free_.empty()) return {};
    ++stats_.reused;
    Bytes out = std::move(free_.back());
    free_.pop_back();
    out.clear();  // keeps capacity
    return out;
  }

  /// Copy `src` into a (possibly recycled) buffer.
  Bytes copy_of(const Bytes& src) {
    Bytes out = acquire();
    out.assign(src.begin(), src.end());
    return out;
  }

  /// Copy a raw byte range (e.g. a Payload's inline store) into a
  /// (possibly recycled) buffer.
  Bytes copy_of(const std::byte* src, std::size_t n) {
    Bytes out = acquire();
    out.assign(src, src + n);
    return out;
  }

  /// Donate a dead buffer's capacity. Oversized or surplus buffers are
  /// simply dropped (bounded memory).
  void recycle(Bytes&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > max_buffer_bytes_ ||
        free_.size() >= max_buffers_) {
      return;
    }
    ++stats_.recycled;
    free_.push_back(std::move(buf));
    free_.back().clear();
  }

  struct Stats {
    std::uint64_t acquired = 0;
    std::uint64_t reused = 0;
    std::uint64_t recycled = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::size_t max_buffers_;
  std::size_t max_buffer_bytes_;
  std::vector<Bytes> free_;
  Stats stats_;
};

}  // namespace dampi::mpism
