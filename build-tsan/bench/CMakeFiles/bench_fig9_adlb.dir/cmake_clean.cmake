file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_adlb.dir/bench_fig9_adlb.cpp.o"
  "CMakeFiles/bench_fig9_adlb.dir/bench_fig9_adlb.cpp.o.d"
  "bench_fig9_adlb"
  "bench_fig9_adlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_adlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
