file(REMOVE_RECURSE
  "CMakeFiles/test_mpism_deadlock.dir/test_mpism_deadlock.cpp.o"
  "CMakeFiles/test_mpism_deadlock.dir/test_mpism_deadlock.cpp.o.d"
  "test_mpism_deadlock"
  "test_mpism_deadlock.pdb"
  "test_mpism_deadlock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpism_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
