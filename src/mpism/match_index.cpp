#include "mpism/match_index.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace dampi::mpism {
namespace {

bool compatible(const RequestRecord& rec, const Envelope& env) {
  return rec.comm == env.comm &&
         (rec.posted_src_world == kAnySource ||
          rec.posted_src_world == env.src_world) &&
         (rec.posted_tag == kAnyTag || rec.posted_tag == env.tag);
}

bool env_matches(const Envelope& env, Rank src_world, Tag tag, CommId comm) {
  return env.comm == comm &&
         (src_world == kAnySource || env.src_world == src_world) &&
         (tag == kAnyTag || env.tag == tag);
}

/// Queue entries examined per matcher query. Indexed lookups always
/// record 1 (hash probes, no scan); the linear matcher records its walk
/// length, so this histogram is the direct evidence that the index
/// collapsed the scans. first_limit=2.0 puts the length-1 samples alone
/// in the first bucket: `quantile_bound(q) <= 2.0` ⇔ every length == 1.
obs::FixedHistogram& scan_hist() {
  static obs::FixedHistogram& h =
      obs::Registry::instance().histogram("match.scan_length", 2.0, 24);
  return h;
}

void record_scan(std::size_t examined) {
  scan_hist().add(static_cast<double>(examined < 1 ? 1 : examined));
}

// ---------------------------------------------------------------------------
// Linear deque walks: the original engine algorithms, shared between the
// LinearMatchIndex oracle and the indexed matcher's small-queue mode (so
// the two stay identical by construction, not by parallel maintenance).
// ---------------------------------------------------------------------------

const Envelope* linear_find_specific(const std::deque<Envelope>& q,
                                     Rank src_world, Tag tag, CommId comm) {
  std::size_t examined = 0;
  for (const Envelope& env : q) {
    ++examined;
    if (env_matches(env, src_world, tag, comm)) {
      record_scan(examined);
      return &env;
    }
  }
  record_scan(examined);
  return nullptr;
}

const Envelope* linear_find_by_id(const std::deque<Envelope>& q,
                                  std::uint64_t msg_id) {
  std::size_t examined = 0;
  for (const Envelope& env : q) {
    ++examined;
    if (env.msg_id == msg_id) {
      record_scan(examined);
      return &env;
    }
  }
  record_scan(examined);
  return nullptr;
}

bool linear_has_candidates(const std::deque<Envelope>& q, Tag tag,
                           CommId comm) {
  std::size_t examined = 0;
  for (const Envelope& env : q) {
    ++examined;
    if (env.tool_internal) continue;
    if (env_matches(env, kAnySource, tag, comm)) {
      record_scan(examined);
      return true;
    }
  }
  record_scan(examined);
  return false;
}

/// One candidate per source: the earliest (arrival order == per-source
/// send order) compatible message — MPI's non-overtaking rule restricts
/// a wildcard receive to exactly these heads. Sorted insertion keeps
/// the by-source ordering the policies rely on without rebuilding a
/// map per call.
void linear_candidates(const std::deque<Envelope>& q, Tag tag, CommId comm,
                       std::vector<MatchCandidate>* out) {
  out->clear();
  for (const Envelope& env : q) {
    if (!env_matches(env, kAnySource, tag, comm)) continue;
    if (env.tool_internal) continue;
    auto it = std::lower_bound(
        out->begin(), out->end(), env.src_world,
        [](const MatchCandidate& c, Rank s) { return c.src_world < s; });
    if (it != out->end() && it->src_world == env.src_world) continue;
    out->insert(it,
                MatchCandidate{env.src_world, env.tag, env.seq, env.msg_id});
  }
  record_scan(q.size());
}

Envelope linear_take(std::deque<Envelope>& q, std::uint64_t msg_id) {
  std::size_t examined = 0;
  for (auto it = q.begin(); it != q.end(); ++it) {
    ++examined;
    if (it->msg_id == msg_id) {
      record_scan(examined);
      Envelope env = std::move(*it);
      q.erase(it);
      return env;
    }
  }
  DAMPI_CHECK_MSG(false, "unexpected message vanished");
  return {};
}

RequestRecord* linear_match_posted(std::deque<RequestRecord*>& q,
                                   const Envelope& env) {
  std::size_t examined = 0;
  for (auto it = q.begin(); it != q.end(); ++it) {
    ++examined;
    if (compatible(**it, env)) {
      record_scan(examined);
      RequestRecord* rec = *it;
      q.erase(it);
      return rec;
    }
  }
  record_scan(examined);
  return nullptr;
}

// ---------------------------------------------------------------------------
// LinearMatchIndex: the original deque walk, verbatim semantics.
// ---------------------------------------------------------------------------

class LinearMatchIndex final : public MatchIndex {
 public:
  void push_unexpected(Envelope&& env) override {
    unexpected_.push_back(std::move(env));
  }

  const Envelope* find_specific(Rank src_world, Tag tag,
                                CommId comm) const override {
    return linear_find_specific(unexpected_, src_world, tag, comm);
  }

  const Envelope* find_by_id(std::uint64_t msg_id) const override {
    return linear_find_by_id(unexpected_, msg_id);
  }

  bool has_candidates(Tag tag, CommId comm) const override {
    return linear_has_candidates(unexpected_, tag, comm);
  }

  void wildcard_candidates(Tag tag, CommId comm,
                           std::vector<MatchCandidate>* out) const override {
    linear_candidates(unexpected_, tag, comm, out);
  }

  Envelope take(std::uint64_t msg_id) override {
    return linear_take(unexpected_, msg_id);
  }

  void post_recv(RequestRecord* rec) override { posted_.push_back(rec); }

  RequestRecord* match_posted(const Envelope& env) override {
    return linear_match_posted(posted_, env);
  }

  PoolStats pool_stats() const override { return {}; }

 private:
  std::deque<Envelope> unexpected_;   ///< unmatched arrivals, arrival order
  std::deque<RequestRecord*> posted_;  ///< pending receives, post order
};

// ---------------------------------------------------------------------------
// IndexedMatchIndex
// ---------------------------------------------------------------------------

/// Hash key for one matching lane. `tag` may be kAnyTag (the cross-tag
/// per-source lane, and ANY-tag posted receives); `src` may be
/// kAnySource (wildcard posted receives) or -1 as "unused" in the
/// per-(comm,tag) source-set key.
struct LaneKey {
  CommId comm;
  Tag tag;
  Rank src;
  bool operator==(const LaneKey&) const = default;
};

struct LaneKeyHash {
  std::size_t operator()(const LaneKey& k) const {
    std::uint64_t h = static_cast<std::uint32_t>(k.comm);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint32_t>(k.tag + 1);
    h = h * 0xC2B2AE3D27D4EB4Full + static_cast<std::uint32_t>(k.src + 1);
    h ^= h >> 29;
    return static_cast<std::size_t>(h * 0x165667B19E3779F9ull >> 32);
  }
};

/// Which source ranks currently have a non-empty lane; iterated in
/// ascending rank order to emit candidates already sorted by source.
class SrcBitmap {
 public:
  void set(Rank s) {
    const auto w = static_cast<std::size_t>(s) / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= std::uint64_t{1} << (static_cast<std::size_t>(s) % 64);
  }
  void clear(Rank s) {
    const auto w = static_cast<std::size_t>(s) / 64;
    if (w < words_.size()) {
      words_[w] &= ~(std::uint64_t{1} << (static_cast<std::size_t>(s) % 64));
    }
  }
  bool any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const int b = std::countr_zero(w);
        f(static_cast<Rank>(i * 64 + static_cast<std::size_t>(b)));
        w &= w - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// How many queued entries the indexed matcher tolerates before it
/// builds lanes. Below this, the original deque walk is both faster
/// (no hashing, no per-message map-node traffic) and allocation-free —
/// shallow-queue workloads (ping-pong, wavefront) never leave it, so
/// they pay nothing for the index. Crossing the threshold migrates the
/// queue into the lanes once and is permanent for this index's lifetime
/// (one engine run): a queue that got deep once tends to get deep again.
constexpr std::size_t kSmallQueueThreshold = 32;

class IndexedMatchIndex final : public MatchIndex {
 public:
  ~IndexedMatchIndex() override {
    if (lanes_ == nullptr) return;
    // Unmatched messages at teardown (aborted/deadlocked runs) still own
    // pooled nodes; destroy them properly so payloads are freed.
    for (auto& [id, node] : lanes_->by_id) lanes_->nodes.release(node);
  }

  void push_unexpected(Envelope&& env) override {
    if (!migrated_) {
      if (small_.size() < kSmallQueueThreshold) {
        small_.push_back(std::move(env));
        return;
      }
      // Crossing: move the backlog into the lanes in queue order (which
      // is msg_id order, preserving every head-comparison invariant).
      ensure_lanes();
      for (Envelope& e : small_) lanes_->index_push(std::move(e));
      small_.clear();
      migrated_ = true;
    }
    lanes_->index_push(std::move(env));
  }

  const Envelope* find_specific(Rank src_world, Tag tag,
                                CommId comm) const override {
    if (!migrated_) {
      return linear_find_specific(small_, src_world, tag, comm);
    }
    // Tool traffic is visible to specific receives, so the winner is the
    // queue-order-earliest of the user and tool lane heads. Queue order
    // == msg_id order (ids are assigned in the same critical section as
    // the insertion), so comparing head ids is exact.
    record_scan(1);
    const Node* a = nullptr;
    const Node* b = nullptr;
    if (tag == kAnyTag) {
      a = head_of(lanes_->user_src, {comm, kAnyTag, src_world});
      b = head_of(lanes_->tool_src, {comm, kAnyTag, src_world});
    } else {
      a = head_of(lanes_->user_tag, {comm, tag, src_world});
      b = head_of(lanes_->tool_tag, {comm, tag, src_world});
    }
    const Node* best = a;
    if (b != nullptr && (best == nullptr || b->env.msg_id < best->env.msg_id)) {
      best = b;
    }
    return best == nullptr ? nullptr : &best->env;
  }

  const Envelope* find_by_id(std::uint64_t msg_id) const override {
    if (!migrated_) return linear_find_by_id(small_, msg_id);
    record_scan(1);
    auto it = lanes_->by_id.find(msg_id);
    return it == lanes_->by_id.end() ? nullptr : &it->second->env;
  }

  bool has_candidates(Tag tag, CommId comm) const override {
    if (!migrated_) return linear_has_candidates(small_, tag, comm);
    record_scan(1);
    const SrcBitmap* bm = lanes_->sources_for(tag, comm);
    return bm != nullptr && bm->any();
  }

  void wildcard_candidates(Tag tag, CommId comm,
                           std::vector<MatchCandidate>* out) const override {
    if (!migrated_) {
      linear_candidates(small_, tag, comm, out);
      return;
    }
    record_scan(1);
    out->clear();
    const SrcBitmap* bm = lanes_->sources_for(tag, comm);
    if (bm == nullptr) return;
    bm->for_each([&](Rank src) {
      const Node* head = tag == kAnyTag
                             ? head_of(lanes_->user_src, {comm, kAnyTag, src})
                             : head_of(lanes_->user_tag, {comm, tag, src});
      DAMPI_CHECK_MSG(head != nullptr, "stale source bit in match index");
      const Envelope& e = head->env;
      out->push_back(MatchCandidate{e.src_world, e.tag, e.seq, e.msg_id});
    });
  }

  Envelope take(std::uint64_t msg_id) override {
    if (!migrated_) return linear_take(small_, msg_id);
    record_scan(1);
    auto it = lanes_->by_id.find(msg_id);
    DAMPI_CHECK_MSG(it != lanes_->by_id.end(), "unexpected message vanished");
    Node* n = it->second;
    lanes_->by_id.erase(it);
    lanes_->detach(n);
    Envelope env = std::move(n->env);
    lanes_->nodes.release(n);
    return env;
  }

  void post_recv(RequestRecord* rec) override {
    if (!posted_migrated_) {
      if (small_posted_.size() < kSmallQueueThreshold) {
        small_posted_.push_back(rec);
        return;
      }
      // Migrate in deque order: post_seq assignment preserves post order.
      ensure_lanes();
      for (RequestRecord* r : small_posted_) lanes_->index_post(r);
      small_posted_.clear();
      posted_migrated_ = true;
    }
    lanes_->index_post(rec);
  }

  RequestRecord* match_posted(const Envelope& env) override {
    if (!posted_migrated_) return linear_match_posted(small_posted_, env);
    // Every compatible posted receive lives in exactly one of these four
    // lanes; each lane is FIFO in post order, so the overall
    // earliest-posted match is the min-post-seq lane head.
    record_scan(1);
    const LaneKey keys[4] = {
        {env.comm, env.tag, env.src_world},
        {env.comm, kAnyTag, env.src_world},
        {env.comm, env.tag, kAnySource},
        {env.comm, kAnyTag, kAnySource},
    };
    PostedMap& posted = lanes_->posted;
    PostedMap::iterator best = posted.end();
    for (const LaneKey& key : keys) {
      auto it = posted.find(key);
      if (it == posted.end()) continue;
      DAMPI_CHECK(!it->second.empty());
      if (best == posted.end() ||
          it->second.front().first < best->second.front().first) {
        best = it;
      }
    }
    if (best == posted.end()) return nullptr;
    RequestRecord* rec = best->second.front().second;
    best->second.pop_front();
    if (best->second.empty()) posted.erase(best);
    return rec;
  }

  PoolStats pool_stats() const override {
    return lanes_ == nullptr ? PoolStats{} : lanes_->nodes.stats();
  }

 private:
  struct Node {
    explicit Node(Envelope&& e) : env(std::move(e)) {}
    Envelope env;
    Node* tag_prev = nullptr;  ///< (comm, tag, src) lane links
    Node* tag_next = nullptr;
    Node* src_prev = nullptr;  ///< (comm, src) cross-tag lane links
    Node* src_next = nullptr;
  };
  struct Lane {
    Node* head = nullptr;
    Node* tail = nullptr;
  };
  using LaneMap = std::unordered_map<LaneKey, Lane, LaneKeyHash>;
  using PostedLane = std::deque<std::pair<std::uint64_t, RequestRecord*>>;
  using PostedMap = std::unordered_map<LaneKey, PostedLane, LaneKeyHash>;

  /// Sentinel `src` for the per-(comm,tag) source-set keys.
  static constexpr Rank kUnusedSrc = -2;

  static void append(Lane& lane, Node* n, Node* Node::* prev,
                     Node* Node::* next) {
    n->*prev = lane.tail;
    n->*next = nullptr;
    if (lane.tail != nullptr) {
      lane.tail->*next = n;
    } else {
      lane.head = n;
    }
    lane.tail = n;
  }

  static void unlink(Lane& lane, Node* n, Node* Node::* prev,
                     Node* Node::* next) {
    if (n->*prev != nullptr) {
      (n->*prev)->*next = n->*next;
    } else {
      lane.head = n->*next;
    }
    if (n->*next != nullptr) {
      (n->*next)->*prev = n->*prev;
    } else {
      lane.tail = n->*prev;
    }
  }

  static const Node* head_of(const LaneMap& map, const LaneKey& key) {
    auto it = map.find(key);
    return it == map.end() ? nullptr : it->second.head;
  }

  /// Everything the migrated mode needs, allocated only when a queue
  /// first crosses the threshold: an unmigrated index per rank must cost
  /// exactly what the linear matcher costs (shallow-queue workloads
  /// construct and destroy one of these per rank per run).
  struct Lanes {
    SlabPool<Node> nodes;
    LaneMap user_tag;  ///< (comm, tag, src) -> FIFO of user messages
    LaneMap tool_tag;  ///< same, tool traffic (find_specific only)
    LaneMap user_src;  ///< (comm, src) -> cross-tag FIFO of user messages
    LaneMap tool_src;
    std::unordered_map<LaneKey, SrcBitmap, LaneKeyHash> user_tag_sources;
    std::unordered_map<CommId, SrcBitmap> user_comm_sources;
    std::unordered_map<std::uint64_t, Node*> by_id;
    PostedMap posted;
    std::uint64_t next_post_seq = 0;

    void index_push(Envelope&& env) {
      Node* n = nodes.acquire(std::move(env));
      const Envelope& e = n->env;
      by_id.emplace(e.msg_id, n);
      const bool tool = e.tool_internal;

      Lane& tl = (tool ? tool_tag : user_tag)[{e.comm, e.tag, e.src_world}];
      if (tl.head == nullptr && !tool) {
        user_tag_sources[{e.comm, e.tag, kUnusedSrc}].set(e.src_world);
      }
      append(tl, n, &Node::tag_prev, &Node::tag_next);

      Lane& sl = (tool ? tool_src : user_src)[{e.comm, kAnyTag, e.src_world}];
      if (sl.head == nullptr && !tool) {
        user_comm_sources[e.comm].set(e.src_world);
      }
      append(sl, n, &Node::src_prev, &Node::src_next);
    }

    void index_post(RequestRecord* rec) {
      posted[{rec->comm, rec->posted_tag, rec->posted_src_world}].emplace_back(
          next_post_seq++, rec);
    }

    const SrcBitmap* sources_for(Tag tag, CommId comm) const {
      if (tag == kAnyTag) {
        auto it = user_comm_sources.find(comm);
        return it == user_comm_sources.end() ? nullptr : &it->second;
      }
      auto it = user_tag_sources.find({comm, tag, kUnusedSrc});
      return it == user_tag_sources.end() ? nullptr : &it->second;
    }

    /// Removes `n` from both of its lanes, erasing emptied lanes (tool
    /// piggyback tags are unique per message, so lane entries must not
    /// outlive their last message) and clearing emptied source bits.
    void detach(Node* n) {
      const Envelope& e = n->env;
      const bool tool = e.tool_internal;

      LaneMap& tmap = tool ? tool_tag : user_tag;
      auto tit = tmap.find({e.comm, e.tag, e.src_world});
      DAMPI_CHECK(tit != tmap.end());
      unlink(tit->second, n, &Node::tag_prev, &Node::tag_next);
      if (tit->second.head == nullptr) {
        tmap.erase(tit);
        if (!tool) {
          auto bit = user_tag_sources.find({e.comm, e.tag, kUnusedSrc});
          DAMPI_CHECK(bit != user_tag_sources.end());
          bit->second.clear(e.src_world);
          if (!bit->second.any()) user_tag_sources.erase(bit);
        }
      }

      LaneMap& smap = tool ? tool_src : user_src;
      auto sit = smap.find({e.comm, kAnyTag, e.src_world});
      DAMPI_CHECK(sit != smap.end());
      unlink(sit->second, n, &Node::src_prev, &Node::src_next);
      if (sit->second.head == nullptr) {
        smap.erase(sit);
        if (!tool) {
          auto bit = user_comm_sources.find(e.comm);
          DAMPI_CHECK(bit != user_comm_sources.end());
          bit->second.clear(e.src_world);
          if (!bit->second.any()) user_comm_sources.erase(bit);
        }
      }
    }
  };

  void ensure_lanes() {
    if (lanes_ == nullptr) lanes_ = std::make_unique<Lanes>();
  }

  // Small-queue mode: the original deque algorithms until the queue
  // first crosses kSmallQueueThreshold, then lanes forever (see above).
  std::deque<Envelope> small_;
  std::deque<RequestRecord*> small_posted_;
  bool migrated_ = false;
  bool posted_migrated_ = false;
  std::unique_ptr<Lanes> lanes_;  ///< null until the first migration
};

}  // namespace

bool parse_match_spec(const std::string& spec, MatchKind* out) {
  if (spec == "linear") {
    *out = MatchKind::kLinear;
  } else if (spec == "indexed") {
    *out = MatchKind::kIndexed;
  } else {
    return false;
  }
  return true;
}

const char* match_spec(MatchKind kind) {
  return kind == MatchKind::kLinear ? "linear" : "indexed";
}

MatchKind default_match_kind() {
  static const MatchKind cached = [] {
    MatchKind kind = MatchKind::kIndexed;
    const char* env = std::getenv("DAMPI_MATCH");
    if (env != nullptr && env[0] != '\0' && !parse_match_spec(env, &kind)) {
      DAMPI_LOG(kWarn) << "ignoring unrecognized DAMPI_MATCH value '" << env
                       << "' (want linear|indexed)";
    }
    return kind;
  }();
  return cached;
}

std::unique_ptr<MatchIndex> make_match_index(MatchKind kind) {
  if (kind == MatchKind::kLinear) {
    return std::make_unique<LinearMatchIndex>();
  }
  return std::make_unique<IndexedMatchIndex>();
}

}  // namespace dampi::mpism
