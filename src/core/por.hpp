// Partial-order reduction over epoch decisions (DESIGN.md §4.14).
//
// Two epoch decisions *commute* when neither can influence the other's
// outcome: they fire on different ranks, draw from disjoint candidate
// source sets on incompatible (comm, tag) channels, and are causally
// concurrent per the recorded vector timestamps. The explorer uses this
// relation for sleep-set pruning: once the subtree under one value of a
// decision is fully explored, re-enumerating a *commuting* sibling
// decision in the next subtree only permutes equivalent interleavings,
// so those sources are put to sleep instead of re-explored.
//
// The relation is deliberately conservative. Whenever the evidence for
// independence is missing — Lamport-only mode records no vector
// timestamps — the answer is "dependent" and nothing is pruned, which
// keeps `--por sleep` behaviourally identical to `--por off` there.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/epoch.hpp"
#include "mpism/types.hpp"

namespace dampi::core {

/// kOff is the compiled-in differential baseline (repo convention, like
/// --match linear): the full cross-product walk, selectable per campaign
/// for equivalence sweeps.
enum class PorMode { kOff, kSleep };

bool parse_por_spec(const std::string& spec, PorMode* out);
const char* por_spec(PorMode mode);
/// Process default: sleep, unless DAMPI_POR says otherwise.
PorMode default_por_mode();

/// Everything the independence relation may consult about one epoch
/// decision, extracted from data the run already left behind (the
/// EpochRecord / DfsFrame — no extra instrumentation).
struct DecisionFootprint {
  int rank = -1;  ///< receiver rank (the rank the epoch fired on)
  mpism::CommId comm = mpism::kCommWorld;
  mpism::Tag tag = mpism::kAnyTag;  ///< as posted; may be kAnyTag
  /// Candidate source set: matched source ∪ alternative keys — every
  /// world rank whose send this decision may bind. Sorted ascending.
  std::vector<mpism::Rank> candidates;
  /// Vector timestamp at epoch open (empty in Lamport-only mode).
  std::vector<std::uint64_t> vc;
};

/// Footprint of an epoch as one run recorded it: candidates are the
/// matched source plus every alternative key.
DecisionFootprint epoch_footprint(const EpochRecord& epoch);

/// True iff the two decisions provably commute. Dependent (false) when:
///  - either vector timestamp is missing (Lamport fallback),
///  - both fire on the same rank (program order),
///  - they share a candidate source on the same comm with compatible
///    tags (the contested-sender case — flipping one steals the other's
///    message),
///  - either decision's candidate set contains the other's receiver
///    rank (the outcome can change what that rank later sends),
///  - the epochs are causally ordered per the vector timestamps.
bool independent(const DecisionFootprint& a, const DecisionFootprint& b);

}  // namespace dampi::core
