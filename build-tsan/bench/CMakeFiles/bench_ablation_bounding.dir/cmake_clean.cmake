file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bounding.dir/bench_ablation_bounding.cpp.o"
  "CMakeFiles/bench_ablation_bounding.dir/bench_ablation_bounding.cpp.o.d"
  "bench_ablation_bounding"
  "bench_ablation_bounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
