# Empty dependencies file for dampi_isp.
# This may be replaced when dependencies are built.
