// Epoch Decisions file round trips and end-to-end replay of saved
// reproducers.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/decision_io.hpp"
#include "core/explorer.hpp"
#include "support/verify_helpers.hpp"
#include "workloads/patterns.hpp"

namespace dampi::test {
namespace {

using core::EpochKey;
using core::Schedule;

TEST(DecisionIo, RoundTrip) {
  Schedule schedule;
  schedule.forced[EpochKey{1, 0}] = 2;
  schedule.forced[EpochKey{1, 7}] = 0;
  schedule.forced[EpochKey{3, 2}] = 1;
  const std::string text = core::serialize_schedule(schedule);
  const auto parsed = core::parse_schedule(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->forced, schedule.forced);
}

TEST(DecisionIo, EmptyScheduleRoundTrips) {
  const auto parsed = core::parse_schedule(core::serialize_schedule({}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(DecisionIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# dampi-epoch-decisions v1\n"
      "\n"
      "# a comment\n"
      "0 3 1\n"
      "\n";
  const auto parsed = core::parse_schedule(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lookup(EpochKey{0, 3}), 1);
}

TEST(DecisionIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(core::parse_schedule("1 0 2\n", &error));  // no header
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_FALSE(core::parse_schedule("garbage\n1 0 2\n", &error));

  EXPECT_FALSE(core::parse_schedule(
      "# dampi-epoch-decisions v1\nnot numbers\n", &error));
  EXPECT_FALSE(core::parse_schedule(
      "# dampi-epoch-decisions v1\n-1 0 2\n", &error));
  EXPECT_FALSE(core::parse_schedule(
      "# dampi-epoch-decisions v1\n1 0 2\n1 0 0\n", &error));  // duplicate
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

// mpism permits self-sends, so a wildcard receive can legitimately match
// its own rank; a saved reproducer containing one must re-load.
TEST(DecisionIo, SelfMatchRoundTrips) {
  Schedule schedule;
  schedule.forced[EpochKey{0, 0}] = 0;  // rank 0 matched its own send
  schedule.forced[EpochKey{2, 3}] = 2;
  schedule.forced[EpochKey{2, 4}] = 1;
  const auto parsed = core::parse_schedule(core::serialize_schedule(schedule));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->forced, schedule.forced);

  std::string error;
  const auto direct = core::parse_schedule(
      "# dampi-epoch-decisions v1\n1 0 1\n", &error);
  ASSERT_TRUE(direct.has_value()) << error;
  EXPECT_EQ(direct->lookup(EpochKey{1, 0}), 1);
}

// The header must be the first non-blank line; decision lines before it
// (or a file whose header appears last) were previously accepted and
// silently replayed a truncated schedule.
TEST(DecisionIo, HeaderMustComeFirst) {
  std::string error;
  // Decisions before the header.
  EXPECT_FALSE(core::parse_schedule(
      "1 0 2\n# dampi-epoch-decisions v1\n", &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  // Header last, after all the decisions.
  EXPECT_FALSE(core::parse_schedule(
      "0 1 2\n0 2 1\n# dampi-epoch-decisions v1\n", &error));
  // A stray comment before the header is also not a decisions file.
  EXPECT_FALSE(core::parse_schedule(
      "# a comment\n# dampi-epoch-decisions v1\n0 1 2\n", &error));
  // Leading blank lines are fine.
  const auto parsed = core::parse_schedule(
      "\n\n# dampi-epoch-decisions v1\n0 1 2\n", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->lookup(EpochKey{0, 1}), 2);
}

TEST(DecisionIo, SaveLoadFile) {
  Schedule schedule;
  schedule.forced[EpochKey{2, 5}] = 0;
  const std::string path = ::testing::TempDir() + "/decisions.txt";
  ASSERT_TRUE(core::save_schedule(schedule, path));
  const auto loaded = core::load_schedule(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->forced, schedule.forced);
  std::remove(path.c_str());
}

TEST(DecisionIo, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(core::load_schedule("/nonexistent/path/x.txt", &error));
  EXPECT_FALSE(error.empty());
}

TEST(DecisionIo, SavedReproducerReplaysTheBug) {
  // Find the fig3 bug, save its reproducer, reload it, replay it.
  core::ExplorerOptions options = explorer_options(3);
  core::Explorer explorer(options);
  const auto result = explorer.explore(workloads::fig3_wildcard_bug);
  ASSERT_TRUE(result.found_bug());

  const std::string path = ::testing::TempDir() + "/fig3_repro.txt";
  ASSERT_TRUE(core::save_schedule(result.bugs.back().schedule, path));
  const auto loaded = core::load_schedule(path);
  ASSERT_TRUE(loaded.has_value());

  for (int i = 0; i < 5; ++i) {
    const auto replay =
        core::run_guided_once(options, *loaded, workloads::fig3_wildcard_bug);
    ASSERT_FALSE(replay.report.errors.empty()) << "replay " << i;
    EXPECT_NE(replay.report.errors[0].message.find("x == 33"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dampi::test
