// Helpers for verifier-level tests: run a single DAMPI-instrumented
// execution under an explicit schedule (bypassing the explorer) and
// convenient option builders.
#pragma once

#include <utility>

#include "core/dampi_layer.hpp"
#include "core/explorer.hpp"
#include "core/verifier.hpp"
#include "piggyback/telepathic.hpp"

namespace dampi::test {

struct SingleRunResult {
  mpism::RunReport report;
  core::RunTrace trace;
};

/// Execute one instrumented run under `schedule` and return its trace.
inline SingleRunResult run_dampi_once(const core::ExplorerOptions& options,
                                      core::Schedule schedule,
                                      const mpism::ProgramFn& program) {
  auto sink = std::make_shared<core::TraceSink>();
  auto shared = std::make_shared<core::DampiShared>(options,
                                                    std::move(schedule), sink);
  std::shared_ptr<piggyback::TelepathicBoard> board;
  if (options.transport == piggyback::TransportKind::kTelepathic) {
    board = std::make_shared<piggyback::TelepathicBoard>();
  }
  mpism::RunOptions run_options;
  run_options.nprocs = options.nprocs;
  run_options.cost = options.cost;
  run_options.policy = options.policy;
  run_options.policy_seed = options.policy_seed;
  run_options.sched = options.sched;
  run_options.match = options.match;
  run_options.engine_lock = options.engine_lock;
  run_options.tools = core::make_dampi_setup(shared, board);
  SingleRunResult out;
  {
    mpism::Runtime runtime(std::move(run_options));
    out.report = runtime.run(program);
  }
  out.trace = sink->take();
  return out;
}

inline core::ExplorerOptions explorer_options(int nprocs) {
  core::ExplorerOptions options;
  options.nprocs = nprocs;
  return options;
}

/// Find the epoch with the given key; nullptr if absent.
inline const core::EpochRecord* find_epoch(const core::RunTrace& trace,
                                           int rank, std::uint64_t nd) {
  for (const auto& e : trace.epochs) {
    if (e.key.rank == rank && e.key.nd_index == nd) return &e;
  }
  return nullptr;
}

}  // namespace dampi::test
