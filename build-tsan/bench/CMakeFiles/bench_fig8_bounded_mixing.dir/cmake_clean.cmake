file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bounded_mixing.dir/bench_fig8_bounded_mixing.cpp.o"
  "CMakeFiles/bench_fig8_bounded_mixing.dir/bench_fig8_bounded_mixing.cpp.o.d"
  "bench_fig8_bounded_mixing"
  "bench_fig8_bounded_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bounded_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
