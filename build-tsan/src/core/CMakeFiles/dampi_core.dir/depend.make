# Empty dependencies file for dampi_core.
# This may be replaced when dependencies are built.
