#include "workloads/suites.hpp"

namespace dampi::workloads {
namespace {

SkeletonSpec base(std::string name, Topology topology, int iterations) {
  SkeletonSpec spec;
  spec.name = std::move(name);
  spec.topology = topology;
  spec.iterations = iterations;
  return spec;
}

std::vector<SuiteEntry> build_suite() {
  std::vector<SuiteEntry> suite;

  {  // 104.milc — lattice QCD: wildcard-heavy halo exchange. The paper's
     // outlier: 51K wildcard receives and a 15x slowdown, plus a
     // communicator leak.
    SuiteEntry e;
    e.spec = base("104.milc", Topology::kGrid3D, 32);
    e.spec.payload_bytes = 512;
    e.spec.wildcard_stride = 4;
    e.spec.collective_stride = 8;
    e.spec.compute_us_per_iter = 4.0;
    e.spec.leak_communicator = true;
    e.spec.waitall_group = 6;
    e.paper_slowdown = 15.0;
    e.paper_rstar = 51'000;
    e.paper_comm_leak = true;
    suite.push_back(e);
  }
  {  // 107.leslie3d — compute-dense 3D stencil, fully deterministic.
    SuiteEntry e;
    e.spec = base("107.leslie3d", Topology::kGrid3D, 24);
    e.spec.payload_bytes = 8192;
    e.spec.collective_stride = 6;
    e.spec.compute_us_per_iter = 150.0;
    e.paper_slowdown = 1.14;
    suite.push_back(e);
  }
  {  // 113.GemsFDTD — FDTD stencil, deterministic, leaks a communicator.
    SuiteEntry e;
    e.spec = base("113.GemsFDTD", Topology::kGrid3D, 24);
    e.spec.payload_bytes = 4096;
    e.spec.collective = CollectiveFlavor::kBcast;
    e.spec.collective_stride = 6;
    e.spec.compute_us_per_iter = 150.0;
    e.spec.leak_communicator = true;
    e.paper_slowdown = 1.13;
    e.paper_comm_leak = true;
    suite.push_back(e);
  }
  {  // 126.lammps — MD neighbor exchange: many tiny messages, so the
     // per-message piggyback overhead bites (1.88x).
    SuiteEntry e;
    e.spec = base("126.lammps", Topology::kGrid3D, 40);
    e.spec.messages_per_partner = 2;
    e.spec.payload_bytes = 64;
    e.spec.collective_stride = 4;
    e.spec.compute_us_per_iter = 2.0;
    e.paper_slowdown = 1.88;
    suite.push_back(e);
  }
  {  // 130.socorro — DFT: balanced compute/communication mix.
    SuiteEntry e;
    e.spec = base("130.socorro", Topology::kGrid2D, 24);
    e.spec.payload_bytes = 2048;
    e.spec.collective_stride = 2;
    e.spec.compute_us_per_iter = 60.0;
    e.paper_slowdown = 1.25;
    suite.push_back(e);
  }
  {  // 137.lu — SPEC's LU: a few hundred wildcard receives across the
     // job (732), communicator leak, negligible slowdown.
    SuiteEntry e;
    e.spec = base("137.lu", Topology::kGrid2D, 40);
    e.spec.payload_bytes = 2048;
    e.spec.wildcard_stride = 40;  // one wildcard sweep per run
    e.spec.wildcard_rank_stride = 8;  // only pipeline heads (732/1024)
    e.spec.collective_stride = 10;
    e.spec.compute_us_per_iter = 200.0;
    e.spec.leak_communicator = true;
    e.paper_slowdown = 1.04;
    e.paper_rstar = 732;
    e.paper_comm_leak = true;
    suite.push_back(e);
  }
  {  // NAS BT — block tridiagonal: 3D halos, larger payloads, dup'd
     // communicator never freed.
    SuiteEntry e;
    e.spec = base("BT", Topology::kGrid3D, 30);
    e.spec.payload_bytes = 6144;
    e.spec.collective_stride = 10;
    e.spec.compute_us_per_iter = 100.0;
    e.spec.leak_communicator = true;
    e.paper_slowdown = 1.28;
    e.paper_comm_leak = true;
    suite.push_back(e);
  }
  {  // NAS CG — conjugate gradient: butterfly transposes + a dot-product
     // allreduce every iteration.
    SuiteEntry e;
    e.spec = base("CG", Topology::kHypercube, 40);
    e.spec.payload_bytes = 2048;
    e.spec.collective_stride = 1;
    e.spec.compute_us_per_iter = 60.0;
    e.paper_slowdown = 1.09;
    suite.push_back(e);
  }
  {  // NAS DT — data traffic: a short burst of large messages.
    SuiteEntry e;
    e.spec = base("DT", Topology::kRing, 8);
    e.spec.payload_bytes = 16384;
    e.spec.collective = CollectiveFlavor::kNone;
    e.spec.compute_us_per_iter = 100.0;
    e.paper_slowdown = 1.01;
    suite.push_back(e);
  }
  {  // NAS EP — embarrassingly parallel: essentially no communication.
    SuiteEntry e;
    e.spec = base("EP", Topology::kRing, 2);
    e.spec.messages_per_partner = 0;
    e.spec.collective_stride = 1;
    e.spec.compute_us_per_iter = 5000.0;
    e.paper_slowdown = 1.02;
    suite.push_back(e);
  }
  {  // NAS FT — FFT: all-to-all transposes, dup'd communicator leak.
    SuiteEntry e;
    e.spec = base("FT", Topology::kAlltoall, 12);
    e.spec.payload_bytes = 4096;
    e.spec.collective_stride = 6;
    e.spec.compute_us_per_iter = 800.0;
    e.spec.leak_communicator = true;
    e.paper_slowdown = 1.01;
    e.paper_comm_leak = true;
    suite.push_back(e);
  }
  {  // NAS IS — integer sort: alltoall buckets + allreduce each iter.
    SuiteEntry e;
    e.spec = base("IS", Topology::kAlltoall, 16);
    e.spec.payload_bytes = 2048;
    e.spec.collective_stride = 1;
    e.spec.compute_us_per_iter = 50.0;
    e.paper_slowdown = 1.09;
    suite.push_back(e);
  }
  {  // NAS LU — pipelined wavefront: torrents of tiny messages plus
     // wildcard receives in its sweeps; the 2.22x / R*=1K row.
    SuiteEntry e;
    e.spec = base("LU", Topology::kGrid2D, 60);
    e.spec.messages_per_partner = 2;
    e.spec.payload_bytes = 128;
    e.spec.wildcard_stride = 60;      // a single wildcard sweep
    e.spec.wildcard_rank_stride = 8;  // ~1K wildcards at 1024 ranks
    e.spec.collective_stride = 15;
    e.spec.compute_us_per_iter = 10.0;
    e.paper_slowdown = 2.22;
    e.paper_rstar = 1000;
    suite.push_back(e);
  }
  {  // NAS MG — multigrid V-cycles: halo exchange at every level.
    SuiteEntry e;
    e.spec = base("MG", Topology::kGrid3D, 24);
    e.spec.payload_bytes = 1024;
    e.spec.collective_stride = 3;
    e.spec.compute_us_per_iter = 80.0;
    e.paper_slowdown = 1.15;
    suite.push_back(e);
  }
  return suite;
}

}  // namespace

const std::vector<SuiteEntry>& table2_suite() {
  static const std::vector<SuiteEntry> suite = build_suite();
  return suite;
}

std::optional<SuiteEntry> find_suite_entry(const std::string& name) {
  for (const SuiteEntry& entry : table2_suite()) {
    if (entry.spec.name == name) return entry;
  }
  return std::nullopt;
}

}  // namespace dampi::workloads
