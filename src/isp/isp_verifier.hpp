// IspVerifier: the centralized baseline with the same verification
// guarantees as DAMPI (it is the authors' earlier tool) but a different
// architecture: a central scheduler with a global view.
//
// Mapped onto this codebase: the global view means ISP tracks causality
// exactly (vector-clock mode) and moves clocks through shared state (the
// telepathic transport — a centralized scheduler needs no piggyback
// messages), while every MPI call pays a synchronous round trip to the
// single scheduler timeline (isp_layer.hpp). Exploration reuses the same
// epoch-decision depth-first search.
#pragma once

#include "core/verifier.hpp"
#include "isp/isp_layer.hpp"

namespace dampi::isp {

struct IspOptions {
  core::ExplorerOptions explorer;
  IspCostParams cost;
  bool measure_native = true;
};

class IspVerifier {
 public:
  explicit IspVerifier(IspOptions options);

  core::VerifyResult verify(const mpism::ProgramFn& program,
                            const core::Explorer::RunObserver& observer = {});

 private:
  IspOptions options_;
};

}  // namespace dampi::isp
